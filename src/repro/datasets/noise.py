"""The paper's four noise-injection protocols (Sec. V-C).

Each experiment of Figs. 5(b)-(i) compares k-NN on a clean database ``D1``
against the same query on a noised database ``D2``:

* **Inter-trajectory sampling variance** — densify ``n%`` of each
  trajectory's segments by splitting them with an inserted point (shape is
  unchanged; the sampling rate rises).
* **Intra-trajectory sampling variance** — the same densification restricted
  to each trajectory's first half.
* **Phase variation** — split the *same* segments in both copies, but at
  different locations; sampling rate and shape agree, only the choice of
  recorded samples differs.
* **Threshold dependency (perturbation)** — displace ``n%`` of the st-points
  uniformly within a circle whose radius is the distance covered in 30
  seconds at the dataset's average speed.

All functions are pure (new Trajectory objects) and deterministic given the
``numpy`` generator passed in.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.trajectory import Trajectory

__all__ = [
    "densify",
    "densify_first_half",
    "phase_pair",
    "perturb",
    "average_speed",
    "thirty_second_radius",
]


def _insert_points(
    traj: Trajectory, segment_indices: Sequence[int], fractions: Sequence[float]
) -> Trajectory:
    """Split the given segments at the given fractions, in one pass."""
    if len(segment_indices) != len(fractions):
        raise ValueError("one fraction per segment index required")
    order = np.argsort(segment_indices)
    rows: List[np.ndarray] = []
    data = traj.data
    pending = {int(segment_indices[i]): float(fractions[i]) for i in order}
    for seg in range(traj.num_segments):
        rows.append(data[seg])
        if seg in pending:
            f = pending[seg]
            a = data[seg]
            b = data[seg + 1]
            rows.append(a + (b - a) * f)
    rows.append(data[-1])
    return Trajectory(np.asarray(rows), traj_id=traj.traj_id,
                      label=traj.label, validate=False)


def _choose_segments(
    num_segments: int, fraction: float, rng: np.random.Generator,
    limit: Optional[int] = None,
) -> np.ndarray:
    """``n%`` of the segment indices (at least one when fraction > 0)."""
    pool = num_segments if limit is None else min(limit, num_segments)
    if pool == 0 or fraction <= 0:
        return np.empty(0, dtype=int)
    count = max(1, int(round(pool * fraction)))
    count = min(count, pool)
    return rng.choice(pool, size=count, replace=False)


def densify(
    traj: Trajectory, fraction: float, rng: np.random.Generator
) -> Trajectory:
    """Inter-trajectory protocol: split ``fraction`` of the segments by an
    inserted point at a random position; the spatial shape is unchanged."""
    segs = _choose_segments(traj.num_segments, fraction, rng)
    if segs.size == 0:
        return traj
    fracs = rng.uniform(0.2, 0.8, segs.size)
    return _insert_points(traj, segs.tolist(), fracs.tolist())


def densify_first_half(
    traj: Trajectory, fraction: float, rng: np.random.Generator
) -> Trajectory:
    """Intra-trajectory protocol: densify only within the first half, so the
    sampling rate varies *inside* the trajectory."""
    half = max(1, traj.num_segments // 2)
    segs = _choose_segments(traj.num_segments, fraction, rng, limit=half)
    if segs.size == 0:
        return traj
    fracs = rng.uniform(0.2, 0.8, segs.size)
    return _insert_points(traj, segs.tolist(), fracs.tolist())


def phase_pair(
    traj: Trajectory, fraction: float, rng: np.random.Generator
) -> Tuple[Trajectory, Trajectory]:
    """Phase protocol: two copies with the *same* densified segments but
    different insertion locations (Sec. V-C: "the only difference lies in
    the location of the inserted point")."""
    segs = _choose_segments(traj.num_segments, fraction, rng)
    if segs.size == 0:
        return traj, traj
    f1 = rng.uniform(0.15, 0.45, segs.size)
    f2 = rng.uniform(0.55, 0.85, segs.size)
    d1 = _insert_points(traj, segs.tolist(), f1.tolist())
    d2 = _insert_points(traj, segs.tolist(), f2.tolist())
    return d1, d2


def average_speed(trajectories: Sequence[Trajectory]) -> float:
    """Mean travel speed (total length / total duration) over a dataset."""
    length = 0.0
    duration = 0.0
    for t in trajectories:
        length += t.length
        duration += t.duration
    if duration <= 0:
        return 0.0
    return length / duration


def thirty_second_radius(trajectories: Sequence[Trajectory]) -> float:
    """The paper's perturbation radius: distance travelled in 30 seconds at
    the dataset's average speed (Sec. V-C, threshold-dependency protocol)."""
    return 30.0 * average_speed(trajectories)


def perturb(
    traj: Trajectory, fraction: float, radius: float,
    rng: np.random.Generator,
) -> Trajectory:
    """Threshold protocol: displace ``fraction`` of the points uniformly
    within a circle of ``radius`` around their true location."""
    n = len(traj)
    if n == 0 or fraction <= 0 or radius <= 0:
        return traj
    count = max(1, int(round(n * fraction)))
    count = min(count, n)
    idx = rng.choice(n, size=count, replace=False)
    data = traj.data.copy()
    # uniform over the disk: sqrt-radius times random angle
    r = radius * np.sqrt(rng.uniform(0.0, 1.0, count))
    ang = rng.uniform(0.0, 2.0 * math.pi, count)
    data[idx, 0] += r * np.cos(ang)
    data[idx, 1] += r * np.sin(ang)
    return Trajectory(data, traj_id=traj.traj_id, label=traj.label,
                      validate=False)
