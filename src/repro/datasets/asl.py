"""Synthetic ASL-style labelled sign workload.

The paper's second dataset is the Australian Sign Language corpus: hand
movement trajectories for 98 distinct signs, recorded in a controlled
environment, each instance labelled with its sign (Sec. V-A/B).  The corpus
is not redistributable here, so this module generates the closest synthetic
equivalent (DESIGN.md substitution table): each class is a smooth prototype
curve built from random low-order Fourier coefficients, and each instance
perturbs the prototype with a smooth temporal warp, small spatial jitter and
slight scaling — similar-but-distinct curves with genuine intra-class
variation, which is exactly what the Fig. 5(a) classification experiment
needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.trajectory import Trajectory

__all__ = ["ASLConfig", "generate_asl", "sign_names"]

#: The ASL corpus has 98 sign classes (paper Sec. V-A).
NUM_SIGNS = 98


@dataclass
class ASLConfig:
    """Knobs of the synthetic sign generator.

    The defaults are tuned so that 1-NN classification is *hard but
    learnable* (the paper's Fig. 5(a) operating regime: accuracies between
    ~0.4 and ~0.9 depending on the metric and the class count): instances
    of one sign share the prototype's shape but differ in execution speed
    (temporal warp), size, hand jitter, and — importantly — in how many
    samples the capture produced (``min_points``..``max_points``), the
    sampling-rate variation the reproduced paper is about.
    """

    min_points: int = 24          # fewest samples per instance
    max_points: int = 48          # most samples per instance
    proto_points: int = 64        # prototype resolution
    harmonics: int = 4            # Fourier order of prototypes
    scale: float = 10.0           # overall curve scale
    warp_strength: float = 0.5    # temporal warp amplitude (fraction)
    jitter: float = 1.8           # spatial noise std-dev
    scale_jitter: float = 0.3     # per-instance size variation (fraction)
    archetypes: int = 12          # base hand-motion families classes share
    class_delta: float = 0.15     # class deviation from its archetype


def sign_names(num_classes: int = NUM_SIGNS) -> List[str]:
    """Stable class labels: ``sign_000`` .. ``sign_097``."""
    return [f"sign_{i:03d}" for i in range(num_classes)]


def _prototype(rng: np.random.Generator, cfg: ASLConfig) -> np.ndarray:
    """One class prototype: a smooth closed-form curve, ``(n, 2)``."""
    s = np.linspace(0.0, 1.0, cfg.proto_points)
    xy = np.zeros((cfg.proto_points, 2))
    for axis in range(2):
        coeffs = rng.normal(0.0, 1.0, (cfg.harmonics, 2))
        decay = 1.0 / (1.0 + np.arange(cfg.harmonics))
        for h in range(cfg.harmonics):
            xy[:, axis] += decay[h] * (
                coeffs[h, 0] * np.sin(2 * np.pi * (h + 1) * s)
                + coeffs[h, 1] * np.cos(2 * np.pi * (h + 1) * s)
            )
    xy -= xy[0]  # signs start at a common origin (hand at rest)
    return xy * cfg.scale


def _instance(
    proto: np.ndarray, rng: np.random.Generator, cfg: ASLConfig
) -> np.ndarray:
    """One noisy instance: resample + warp + rescale + jitter.

    The instance's sample count is drawn from ``min_points..max_points``,
    so instances of one sign arrive at *different sampling rates* — the
    nuisance the reproduced paper's metric is designed to survive.
    """
    proto_s = np.linspace(0.0, 1.0, proto.shape[0])
    n = int(rng.integers(cfg.min_points, cfg.max_points + 1))
    s = np.linspace(0.0, 1.0, n)
    # smooth monotone time warp: s' = s + a*sin(pi*s)/pi stays in [0, 1]
    amp = rng.uniform(-cfg.warp_strength, cfg.warp_strength)
    warped = s + amp * np.sin(np.pi * s) / np.pi
    x = np.interp(warped, proto_s, proto[:, 0])
    y = np.interp(warped, proto_s, proto[:, 1])
    scale = 1.0 + rng.normal(0.0, cfg.scale_jitter)
    xy = np.column_stack([x, y]) * scale
    xy += rng.normal(0.0, cfg.jitter, xy.shape)
    return xy


def generate_asl(
    num_classes: int = NUM_SIGNS,
    instances_per_class: int = 10,
    seed: int = 0,
    config: Optional[ASLConfig] = None,
) -> List[Trajectory]:
    """Generate a labelled sign dataset.

    Returns ``num_classes * instances_per_class`` trajectories; each carries
    its class name in ``label`` and a sequential ``traj_id``.  Timestamps are
    uniform (the ASL recordings are clean, fixed-rate capture).
    """
    if not 1 <= num_classes <= NUM_SIGNS:
        raise ValueError(f"num_classes must be in [1, {NUM_SIGNS}]")
    cfg = config or ASLConfig()
    rng = np.random.default_rng(seed)
    names = sign_names(num_classes)

    # Real signs cluster into confusable families (similar hand motions
    # with different flourishes); each class is an archetype plus a smaller
    # class-specific deviation, so 1-NN errors concentrate within families.
    num_arch = max(1, min(cfg.archetypes, num_classes))
    arch = [_prototype(rng, cfg) for _ in range(num_arch)]

    out: List[Trajectory] = []
    tid = 0
    for cls in range(num_classes):
        base = arch[cls % num_arch]
        proto = base + cfg.class_delta * _prototype(rng, cfg)
        for _ in range(instances_per_class):
            xy = _instance(proto, rng, cfg)
            out.append(Trajectory.from_xy(xy, traj_id=tid, label=names[cls]))
            tid += 1
    return out
