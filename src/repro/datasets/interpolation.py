"""Uniform-density re-interpolation — the EDR-I preprocessing (Sec. V-C).

The paper studies EDR on datasets interpolated "such that the processed
database of trajectories have a uniform density that is equal to the
maximum density observed" (Sec. II): each st-segment is subdivided with
evenly spaced interpolated points until its local density reaches the
target.  Crucially the original sampled points are *kept* as breakpoints,
so two differently-sampled copies of the same path interpolate to
different point sets — which is why EDR-I improves on raw EDR without
matching the projection-based EDwP (Figs. 5b-i).

A time-grid resampling variant (:func:`resample_time_uniform`) is also
provided for consumers that want a fixed-rate signal.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..core.trajectory import Trajectory

__all__ = [
    "resample_time_uniform",
    "min_sampling_interval",
    "densify_to_spacing",
    "corpus_target_spacing",
    "interpolate_dataset",
]


def resample_time_uniform(traj: Trajectory, dt: float) -> Trajectory:
    """Resample one trajectory at fixed time step ``dt`` (endpoints kept)."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    if len(traj) < 2:
        return traj
    t0 = float(traj.data[0, 2])
    t1 = float(traj.data[-1, 2])
    if t1 <= t0:
        return traj
    times = np.arange(t0, t1, dt)
    if times.size == 0 or times[-1] < t1:
        times = np.append(times, t1)
    return traj.resampled_at_times(times)


def min_sampling_interval(trajectories: Sequence[Trajectory]) -> float:
    """Smallest positive inter-sample interval in the corpus — the paper's
    "maximum density observed" target rate for interpolation."""
    best = np.inf
    for t in trajectories:
        if len(t) < 2:
            continue
        gaps = np.diff(t.times())
        positive = gaps[gaps > 0]
        if positive.size:
            best = min(best, float(positive.min()))
    if not np.isfinite(best):
        raise ValueError("no positive sampling interval found in the corpus")
    return best


def densify_to_spacing(traj: Trajectory, spacing: float) -> Trajectory:
    """Subdivide every segment with evenly spaced points until no gap
    exceeds ``spacing``.  Original sampled points are kept."""
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    if len(traj) < 2:
        return traj
    data = traj.data
    rows: List[np.ndarray] = []
    for i in range(len(traj) - 1):
        a = data[i]
        b = data[i + 1]
        rows.append(a)
        seg_len = math.hypot(b[0] - a[0], b[1] - a[1])
        pieces = int(math.ceil(seg_len / spacing))
        for p in range(1, pieces):
            rows.append(a + (b - a) * (p / pieces))
    rows.append(data[-1])
    return Trajectory(np.asarray(rows), traj_id=traj.traj_id,
                      label=traj.label, validate=False)


def corpus_target_spacing(
    trajectories: Sequence[Trajectory], percentile: float = 5.0
) -> float:
    """The corpus's "maximum density" as a target spacing.

    The paper's target is the densest sampling observed; a low percentile
    of all positive segment lengths approximates it while ignoring
    degenerate zero-length segments.
    """
    lengths: List[np.ndarray] = []
    for t in trajectories:
        seg = t.segment_lengths()
        seg = seg[seg > 0]
        if seg.size:
            lengths.append(seg)
    if not lengths:
        raise ValueError("no positive segment length found in the corpus")
    return float(np.percentile(np.concatenate(lengths), percentile))


def interpolate_dataset(
    trajectories: Sequence[Trajectory],
    spacing: Optional[float] = None,
    max_points: int = 512,
) -> List[Trajectory]:
    """Interpolate a corpus to uniform density (the EDR-I input).

    ``spacing`` defaults to the corpus target (see
    :func:`corpus_target_spacing`); ``max_points`` caps the per-trajectory
    sample count so one long trip cannot blow up the quadratic comparator
    (the cap loosens the spacing only for those trips).
    """
    if spacing is None:
        spacing = corpus_target_spacing(trajectories)
    out: List[Trajectory] = []
    for t in trajectories:
        if len(t) < 2:
            out.append(t)
            continue
        step = spacing
        budget = max(max_points - len(t), 1)
        if t.length / step > budget:
            step = t.length / budget
        out.append(densify_to_spacing(t, step))
    return out
