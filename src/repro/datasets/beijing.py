"""Synthetic Beijing-style taxi workload.

The paper evaluates on the T-Drive Beijing cab dataset (10k cabs over a
week, 42k trips after splitting) [18], which is not redistributable here.
This module builds the closest synthetic equivalent (see DESIGN.md's
substitution table): a fleet of taxis driving on a Manhattan-style grid road
network of Beijing-like extent, with

* trips that follow roads (turn-biased random walks between intersections),
* per-cab *and* per-segment speed variation,
* heterogeneous sampling intervals across cabs (the paper's motivating
  observation: drivers change the device sampling rate), and
* optional parked dwells and signal gaps, so the paper's 15-minute trip
  splitter has real work to do.

Everything is deterministic given the seed.  Coordinates are meters on a
local plane; timestamps are seconds.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.trajectory import Trajectory
from .splitting import split_trips

__all__ = ["BeijingConfig", "generate_beijing", "generate_cab_streams"]


@dataclass
class BeijingConfig:
    """Knobs of the synthetic taxi workload.

    Defaults produce city-scale trips: a 20 km x 20 km grid with 400 m
    blocks, trips of 15-60 intersections, cab speeds of 6-14 m/s and
    sampling intervals of 15-120 s depending on the cab.

    ``route_families`` controls neighbourhood structure: trips are drawn
    from that many popular base routes (with per-trip trims and detours)
    instead of wandering independently.  Real taxi corpora concentrate on
    arterial routes, which is what gives k-NN queries genuine near-ties;
    0 disables the mechanism (every trip independent).
    """

    extent: float = 20_000.0          # square side, meters
    block: float = 400.0              # road grid pitch, meters
    min_hops: int = 15                # intersections per trip (min)
    max_hops: int = 60                # intersections per trip (max)
    speed_low: float = 6.0            # slowest cab cruise speed, m/s
    speed_high: float = 14.0          # fastest cab cruise speed, m/s
    sample_low: float = 15.0          # fastest per-cab sampling interval, s
    sample_high: float = 120.0        # slowest per-cab sampling interval, s
    straight_bias: float = 0.7        # probability of continuing straight
    jitter: float = 8.0               # GPS noise std-dev, meters
    route_families: int = 0           # popular base routes (0 = independent)


_DIRS: Tuple[Tuple[int, int], ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))


def _drive_path(rng: random.Random, cfg: BeijingConfig) -> List[Tuple[float, float]]:
    """One road-following trip as a polyline of intersection coordinates."""
    cells = int(cfg.extent / cfg.block)
    cx = rng.randrange(1, cells - 1)
    cy = rng.randrange(1, cells - 1)
    direction = rng.choice(_DIRS)
    hops = rng.randint(cfg.min_hops, cfg.max_hops)
    path = [(cx * cfg.block, cy * cfg.block)]
    for _ in range(hops):
        if rng.random() > cfg.straight_bias:
            # turn left or right (never reverse: cabs don't U-turn mid-trip)
            dx, dy = direction
            direction = rng.choice(((-dy, dx), (dy, -dx)))
        nx, ny = cx + direction[0], cy + direction[1]
        if not (0 <= nx < cells and 0 <= ny < cells):
            dx, dy = direction
            direction = (-dx, -dy)
            nx, ny = cx + direction[0], cy + direction[1]
        cx, cy = nx, ny
        path.append((cx * cfg.block, cy * cfg.block))
    return path


def _sample_trip(
    path: List[Tuple[float, float]],
    rng: random.Random,
    np_rng: np.random.Generator,
    cfg: BeijingConfig,
    cruise_speed: float,
    sample_interval: float,
    start_time: float,
) -> np.ndarray:
    """Timestamped GPS samples along a driven polyline.

    The cab moves along the path with per-leg speed jitter; the device
    records a fix every ``sample_interval`` seconds (with 20% jitter), plus
    always the trip start and end.
    """
    # cumulative arrival time at each vertex
    times = [start_time]
    for (x0, y0), (x1, y1) in zip(path[:-1], path[1:]):
        leg = math.hypot(x1 - x0, y1 - y0)
        speed = cruise_speed * rng.uniform(0.6, 1.4)
        times.append(times[-1] + leg / max(speed, 0.5))
    times_arr = np.asarray(times)
    xs = np.asarray([p[0] for p in path])
    ys = np.asarray([p[1] for p in path])

    # device fix schedule
    t = start_time
    fixes = [start_time]
    end = times_arr[-1]
    while t < end:
        t += sample_interval * rng.uniform(0.8, 1.2)
        if t < end:
            fixes.append(t)
    fixes.append(end)
    fix_arr = np.asarray(fixes)

    px = np.interp(fix_arr, times_arr, xs)
    py = np.interp(fix_arr, times_arr, ys)
    if cfg.jitter > 0:
        px = px + np_rng.normal(0.0, cfg.jitter, px.shape)
        py = py + np_rng.normal(0.0, cfg.jitter, py.shape)
    return np.column_stack([px, py, fix_arr])


def _family_variant(
    base: List[Tuple[float, float]],
    rng: random.Random,
    cfg: BeijingConfig,
) -> List[Tuple[float, float]]:
    """A trip following a popular route: trimmed ends, optional detour.

    The variant keeps most of the base route so trips of one family are
    genuine near-neighbours, while trims and a block-level detour keep them
    distinguishable.
    """
    n = len(base)
    start = rng.randint(0, max(0, n // 5))
    end = n - rng.randint(0, max(0, n // 5))
    path = list(base[start:max(end, start + 2)])
    if len(path) >= 5 and rng.random() < 0.5:
        # one-block detour: push a middle vertex one block sideways and
        # route through it rectilinearly
        i = rng.randint(2, len(path) - 3)
        x, y = path[i]
        dx, dy = rng.choice(_DIRS)
        detour = (x + dx * cfg.block, y + dy * cfg.block)
        path = path[:i] + [detour] + path[i + 1:]
    return path


def generate_beijing(
    num_trajectories: int,
    seed: int = 0,
    config: Optional[BeijingConfig] = None,
) -> List[Trajectory]:
    """Generate ``num_trajectories`` single-trip taxi trajectories.

    Each trip gets its own cab persona (cruise speed, sampling interval)
    drawn from the configured ranges, so *inter*-trajectory sampling-rate
    variation is built in; *intra*-trajectory variation comes from the
    sampling-interval jitter.  Trajectory ids are sequential.

    With ``config.route_families == 0`` (the default) a families count of
    ``max(4, num_trajectories // 8)`` is used, mimicking the arterial-route
    concentration of real taxi data; set it explicitly to override, or to a
    value >= ``num_trajectories`` for fully independent trips.
    """
    cfg = config or BeijingConfig()
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)

    families = cfg.route_families or max(4, num_trajectories // 8)
    base_routes = [_drive_path(rng, cfg) for _ in range(min(families,
                                                            num_trajectories))]
    out: List[Trajectory] = []
    for i in range(num_trajectories):
        cruise = rng.uniform(cfg.speed_low, cfg.speed_high)
        interval = rng.uniform(cfg.sample_low, cfg.sample_high)
        if families >= num_trajectories:
            path = _drive_path(rng, cfg)
        else:
            path = _family_variant(rng.choice(base_routes), rng, cfg)
        data = _sample_trip(path, rng, np_rng, cfg, cruise, interval, 0.0)
        out.append(Trajectory(data, traj_id=i, validate=False))
    return out


def generate_cab_streams(
    num_cabs: int,
    trips_per_cab: int = 4,
    seed: int = 0,
    config: Optional[BeijingConfig] = None,
    dwell_minutes: Tuple[float, float] = (5.0, 45.0),
) -> List[Trajectory]:
    """Raw day-long cab streams with parked dwells between trips.

    Unlike :func:`generate_beijing`, the output needs the paper's 15-minute
    splitter (:func:`repro.datasets.splitting.split_trips`) before analysis:
    between trips a cab either parks (repeated fixes at one spot) or goes
    dark (a time gap).  Used to exercise the preprocessing code path.
    """
    cfg = config or BeijingConfig()
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed + 1)
    streams: List[Trajectory] = []
    for cab in range(num_cabs):
        cruise = rng.uniform(cfg.speed_low, cfg.speed_high)
        interval = rng.uniform(cfg.sample_low, cfg.sample_high)
        rows: List[np.ndarray] = []
        t = 0.0
        for _ in range(trips_per_cab):
            path = _drive_path(rng, cfg)
            data = _sample_trip(path, rng, np_rng, cfg, cruise, interval, t)
            rows.append(data)
            t = float(data[-1, 2])
            dwell = rng.uniform(*dwell_minutes) * 60.0
            if rng.random() < 0.5:
                # parked: repeated fixes at the trip's last location
                x, y = data[-1, 0], data[-1, 1]
                fix_t = t + interval
                parked = []
                while fix_t < t + dwell:
                    parked.append(
                        (x + rng.uniform(-5, 5), y + rng.uniform(-5, 5), fix_t)
                    )
                    fix_t += interval
                if parked:
                    rows.append(np.asarray(parked))
            # else: signal gap — nothing recorded
            t += dwell
        stream = np.vstack(rows)
        streams.append(Trajectory(stream, traj_id=cab, validate=False))
    return streams
