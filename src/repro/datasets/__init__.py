"""Workload substrate: synthetic datasets, noise protocols, preprocessing.

The paper's two corpora (Beijing T-Drive taxis; Australian Sign Language)
are replaced by deterministic synthetic equivalents — see the substitution
table in DESIGN.md.  The noise injectors and the trip splitter implement the
paper's Sec. V protocols exactly.
"""

from .asl import ASLConfig, generate_asl, sign_names
from .beijing import BeijingConfig, generate_beijing, generate_cab_streams
from .interpolation import (
    corpus_target_spacing,
    densify_to_spacing,
    interpolate_dataset,
    min_sampling_interval,
    resample_time_uniform,
)
from .io import DatasetError, load_csv, load_json, save_csv, save_json
from .noise import (
    average_speed,
    densify,
    densify_first_half,
    perturb,
    phase_pair,
    thirty_second_radius,
)
from .splitting import split_trajectory, split_trips
from .stats import CorpusStats, corpus_stats, format_stats

__all__ = [
    "ASLConfig",
    "generate_asl",
    "sign_names",
    "BeijingConfig",
    "generate_beijing",
    "generate_cab_streams",
    "corpus_target_spacing",
    "densify_to_spacing",
    "interpolate_dataset",
    "min_sampling_interval",
    "resample_time_uniform",
    "DatasetError",
    "load_csv",
    "load_json",
    "save_csv",
    "save_json",
    "average_speed",
    "densify",
    "densify_first_half",
    "perturb",
    "phase_pair",
    "thirty_second_radius",
    "split_trajectory",
    "split_trips",
    "CorpusStats",
    "corpus_stats",
    "format_stats",
]
