"""Trajectory persistence: CSV and JSON round-trips.

The flat CSV layout (one row per st-point) matches how public trajectory
corpora like T-Drive ship, so a user can load real data into the library by
exporting to this schema:

    traj_id,label,x,y,t
    0,,1.5,2.5,0.0
    ...

JSON stores a list of ``{"traj_id", "label", "points": [[x, y, t], ...]}``
objects — convenient for small fixtures and examples.

Both loaders harden their input: zero-point trajectories and non-finite
(NaN/inf) coordinates raise a typed :class:`DatasetError` naming the
offending trajectory id, instead of handing garbage to the DP kernels
(where one NaN coordinate silently poisons every distance it touches).
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..core.trajectory import Trajectory

__all__ = ["DatasetError", "save_csv", "load_csv", "save_json", "load_json"]

PathLike = Union[str, Path]


class DatasetError(ValueError):
    """A loaded corpus is malformed: empty trajectory, NaN/inf coordinate,
    or a schema problem — the message names the offending trajectory."""


def _checked(points: Sequence[Tuple[float, float, float]],
             traj_id: Optional[int], raw_key: object,
             label: Optional[str]) -> Trajectory:
    """Build one trajectory, rejecting empty/non-finite input."""
    name = raw_key if traj_id is None else traj_id
    if not points:
        raise DatasetError(f"trajectory {name!r} has zero points")
    for x, y, t in points:
        if not (math.isfinite(x) and math.isfinite(y) and math.isfinite(t)):
            raise DatasetError(
                f"trajectory {name!r} contains a non-finite coordinate "
                f"({x!r}, {y!r}, {t!r})"
            )
    return Trajectory(points, traj_id=traj_id, label=label)


def save_csv(trajectories: Sequence[Trajectory], path: PathLike) -> None:
    """Write a corpus as flat CSV (one row per st-point)."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["traj_id", "label", "x", "y", "t"])
        for i, traj in enumerate(trajectories):
            tid = traj.traj_id if traj.traj_id is not None else i
            label = traj.label or ""
            for row in traj.data:
                writer.writerow([tid, label, repr(float(row[0])),
                                 repr(float(row[1])), repr(float(row[2]))])


def load_csv(path: PathLike) -> List[Trajectory]:
    """Read a corpus written by :func:`save_csv` (or shaped like it).

    Rows are grouped by ``traj_id`` preserving file order; points within a
    trajectory keep their row order.
    """
    groups: dict = {}
    order: List[str] = []
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        required = {"traj_id", "x", "y", "t"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise ValueError(
                f"CSV must have columns {sorted(required)}, got {reader.fieldnames}"
            )
        for row in reader:
            key = row["traj_id"]
            if key not in groups:
                groups[key] = {"label": row.get("label") or None, "points": []}
                order.append(key)
            groups[key]["points"].append(
                (float(row["x"]), float(row["y"]), float(row["t"]))
            )
    out: List[Trajectory] = []
    for key in order:
        item = groups[key]
        try:
            tid = int(key)
        except ValueError:
            tid = None
        out.append(_checked(item["points"], tid, key, item["label"]))
    return out


def save_json(trajectories: Sequence[Trajectory], path: PathLike) -> None:
    """Write a corpus as a JSON list of trajectory objects."""
    payload = []
    for i, traj in enumerate(trajectories):
        payload.append(
            {
                "traj_id": traj.traj_id if traj.traj_id is not None else i,
                "label": traj.label,
                "points": [[row[0], row[1], row[2]] for row in traj.data],
            }
        )
    with open(path, "w") as f:
        json.dump(payload, f)


def load_json(path: PathLike) -> List[Trajectory]:
    """Read a corpus written by :func:`save_json`."""
    with open(path) as f:
        payload = json.load(f)
    out: List[Trajectory] = []
    for item in payload:
        points = [tuple(float(v) for v in row) for row in item["points"]]
        out.append(
            _checked(points, item.get("traj_id"), item.get("traj_id"),
                     item.get("label"))
        )
    return out
