"""Core contribution of the paper: the EDwP distance family.

Public surface:

* :class:`~repro.core.trajectory.Trajectory`, :class:`~repro.core.trajectory.STPoint`,
  :class:`~repro.core.trajectory.Segment` — the data model (Definitions 1-3).
* :func:`~repro.core.edwp.edwp`, :func:`~repro.core.edwp.edwp_avg`,
  :func:`~repro.core.edwp.edwp_alignment` — Sec. III-A.
* :func:`~repro.core.edwp_sub.edwp_sub`, :func:`~repro.core.edwp_sub.prefix_dist`
  — the sub-trajectory distance of Sec. IV-B (Eq. 5-6).
"""

from .trajectory import STPoint, Segment, Trajectory
from .edwp import EditOp, EdwpResult, edwp, edwp_alignment, edwp_avg

__all__ = [
    "STPoint",
    "Segment",
    "Trajectory",
    "EditOp",
    "EdwpResult",
    "edwp",
    "edwp_alignment",
    "edwp_avg",
]
