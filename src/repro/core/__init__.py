"""Core contribution of the paper: the EDwP distance family.

Public surface:

* :class:`~repro.core.trajectory.Trajectory`, :class:`~repro.core.trajectory.STPoint`,
  :class:`~repro.core.trajectory.Segment` — the data model (Definitions 1-3).
* :func:`~repro.core.edwp.edwp`, :func:`~repro.core.edwp.edwp_avg`,
  :func:`~repro.core.edwp.edwp_alignment` — Sec. III-A.
* :func:`~repro.core.edwp.edwp_many` — batched EDwP of one query against
  many trajectories (the hot path of index refinement and benchmarks).
* :func:`~repro.core.edwp_sub.edwp_sub`, :func:`~repro.core.edwp_sub.prefix_dist`
  — the sub-trajectory distance of Sec. IV-B (Eq. 5-6).
* :func:`~repro.core.edwp.set_backend` / :func:`~repro.core.edwp.get_backend`
  / :func:`~repro.core.edwp.use_backend` — switch between the pure-Python
  reference DP, the vectorized numpy kernel (:mod:`repro.core.edwp_fast`)
  and the optional numba-compiled native tier (:mod:`repro._native`); see
  DESIGN.md, "Dual-backend EDwP kernels" and "Native kernel tier".
"""

from .trajectory import STPoint, Segment, Trajectory
from .edwp import (
    BACKENDS,
    KNOWN_BACKENDS,
    BackendError,
    EditOp,
    EdwpResult,
    NativeBackendUnavailableError,
    UnknownBackendError,
    available_backends,
    edwp,
    edwp_alignment,
    edwp_avg,
    edwp_many,
    get_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "STPoint",
    "Segment",
    "Trajectory",
    "EditOp",
    "EdwpResult",
    "edwp",
    "edwp_alignment",
    "edwp_avg",
    "edwp_many",
    "BACKENDS",
    "KNOWN_BACKENDS",
    "available_backends",
    "BackendError",
    "UnknownBackendError",
    "NativeBackendUnavailableError",
    "get_backend",
    "set_backend",
    "use_backend",
]
