"""Sub-trajectory distance EDwPsub between two trajectories (Eq. 5-6).

``edwp_sub(T, S)`` finds the contiguous portion of ``S`` most similar to the
whole of ``T``: the PrefixDist recursion (Eq. 5) lets any *suffix* of ``S``
be skipped for free (its ``|T| = 0`` base case returns 0 with ``S`` left
over), and the outer minimum over suffixes of ``S`` (Eq. 6) skips any
*prefix* for free.  In DP terms this is a local alignment along the ``S``
axis: row 0 is all zeros and the answer is the minimum of the last row.

EDwPsub is asymmetric: the first argument must be fully matched.  It is the
workhorse of TrajTree — pivot selection (Alg. 1) measures trajectory
diversity with it, and tBoxSeq construction and query-time lower bounds
(Theorem 2) use the generalized box-sequence form in
:mod:`repro.index.tboxseq`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from . import edwp_fast
from .. import _native
from .edwp import EdwpResult, _backtrack, _edwp_dp, _resolve_backend, _spatial_points
from .trajectory import Trajectory

__all__ = [
    "edwp_sub",
    "edwp_sub_many",
    "edwp_sub_fast",
    "edwp_sub_fast_queries",
    "edwp_sub_alignment",
    "prefix_dist",
]


def _sub_trivial(n_t: int, n_s: int) -> float | None:
    """Base cases: empty query matches trivially; empty target never does."""
    if n_t <= 0:
        return 0.0
    if n_s <= 0:
        return math.inf
    return None


def edwp_sub(t: Trajectory, s: Trajectory, backend: Optional[str] = None) -> float:
    """``EDwPsub(T, S)``: cost of aligning all of ``T`` to the best
    contiguous sub-trajectory of ``S`` (Eq. 6).

    Satisfies ``edwp_sub(T, S) <= edwp(T, Ts)`` for every contiguous
    sub-trajectory ``Ts`` of ``S`` (paper Lemma 2), in particular
    ``edwp_sub(T, S) <= edwp(T, S)`` — up to the documented tolerance of
    the Viterbi DP realization (DESIGN.md).

    Implementation note: Eq. 6 is the minimum of PrefixDist over all
    suffixes of ``S``.  The free-start-row DP folds all suffix starts into
    one pass, but its zero-cost row can shadow a PrefixDist path whose
    positions are better downstream, so the value is taken as the minimum
    of both passes — which also guarantees
    ``edwp_sub(T, S) <= prefix_dist(T, S)`` structurally.
    """
    trivial = _sub_trivial(t.num_segments, s.num_segments)
    if trivial is not None:
        return trivial
    resolved = _resolve_backend(backend)
    if resolved == "numpy":
        return edwp_fast.edwp_sub_numpy(t, s)
    if resolved == "native":
        return _native.load().edwp_sub_native(t, s)
    p1 = _spatial_points(t)
    p2 = _spatial_points(s)
    free, _, _ = _edwp_dp(p1, p2, keep_parents=False, free_start_row=True)
    anchored, _, _ = _edwp_dp(p1, p2, keep_parents=False, free_start_row=False)
    return min(min(free[len(p1) - 1]), min(anchored[len(p1) - 1]))


def edwp_sub_many(
    t: Trajectory,
    trajectories: Sequence[Trajectory],
    backend: Optional[str] = None,
) -> List[float]:
    """``EDwPsub(T, S)`` of one query against many targets.

    The batched entry point of the sub-trajectory distance: on the
    ``"numpy"`` backend the whole batch runs through the lockstep kernel
    (:func:`repro.core.edwp_fast.edwp_sub_many_numpy`, both DP passes);
    on ``"python"`` it is a plain loop.  TrajTree's ``subtrajectory_knn``
    leaf refinement and scan oracle route through this.

    Returns one distance per target, in order, with the same base-case
    semantics as :func:`edwp_sub` per pair.
    """
    resolved = _resolve_backend(backend)
    trajectories = list(trajectories)
    if t.num_segments <= 0:
        return [0.0] * len(trajectories)
    if resolved == "numpy" and trajectories:
        return edwp_fast.edwp_sub_many_numpy(t, trajectories)
    if resolved == "native" and trajectories:
        return _native.load().edwp_sub_many_native(t, trajectories)
    return [edwp_sub(t, s, backend=resolved) for s in trajectories]


def edwp_sub_fast(t: Trajectory, s: Trajectory, backend: Optional[str] = None) -> float:
    """Single-pass EDwPsub (free-start DP only).

    Half the cost of :func:`edwp_sub`; the value can exceed the two-pass
    result when the free row shadows a better-positioned anchored path.
    Used where EDwPsub is a *heuristic* rather than a reported value —
    pivot-diversity estimation in Alg. 1 and tBoxSeq construction.
    """
    trivial = _sub_trivial(t.num_segments, s.num_segments)
    if trivial is not None:
        return trivial
    resolved = _resolve_backend(backend)
    if resolved == "numpy":
        return edwp_fast.edwp_sub_fast_numpy(t, s)
    if resolved == "native":
        return _native.load().edwp_sub_fast_native(t, s)
    p1 = _spatial_points(t)
    p2 = _spatial_points(s)
    free, _, _ = _edwp_dp(p1, p2, keep_parents=False, free_start_row=True)
    return min(free[len(p1) - 1])


def edwp_sub_fast_queries(
    queries: Sequence[Trajectory],
    s: Trajectory,
    backend: Optional[str] = None,
) -> List[float]:
    """:func:`edwp_sub_fast` of many first arguments against one target.

    The batch-*first* counterpart of :func:`edwp_sub_many` (which batches
    over the second argument): Alg. 1 pivot selection measures every node
    trajectory against one shared pivot, so on the ``"numpy"`` backend the
    whole column runs through the batch-first lockstep kernel
    (:func:`repro.core.edwp_fast.edwp_sub_fast_queries_numpy`); on
    ``"python"`` it is a plain loop.  Returns one value per query, in
    order, with the same base-case semantics as :func:`edwp_sub_fast`.
    """
    resolved = _resolve_backend(backend)
    queries = list(queries)
    if s.num_segments <= 0:
        return [_sub_trivial(q.num_segments, 0) for q in queries]
    if resolved == "numpy" and queries:
        return edwp_fast.edwp_sub_fast_queries_numpy(queries, s)
    if resolved == "native" and queries:
        return _native.load().edwp_sub_fast_queries_native(queries, s)
    return [edwp_sub_fast(q, s, backend=resolved) for q in queries]


def prefix_dist(t: Trajectory, s: Trajectory, backend: Optional[str] = None) -> float:
    """``PrefixDist(T, S)`` (Eq. 5): align all of ``T`` with a *prefix* of
    ``S``, skipping any suffix of ``S`` for free."""
    trivial = _sub_trivial(t.num_segments, s.num_segments)
    if trivial is not None:
        return trivial
    resolved = _resolve_backend(backend)
    if resolved == "numpy":
        return edwp_fast.prefix_dist_numpy(t, s)
    if resolved == "native":
        return _native.load().prefix_dist_native(t, s)
    p1 = _spatial_points(t)
    p2 = _spatial_points(s)
    cost, _, _ = _edwp_dp(p1, p2, keep_parents=False, free_start_row=False)
    return min(cost[len(p1) - 1])


def edwp_sub_alignment(t: Trajectory, s: Trajectory) -> EdwpResult:
    """``EDwPsub(T, S)`` plus the optimal edit script.

    The edit script covers all of ``T``; ``S`` pieces touched by no edit were
    skipped.  Each :class:`~repro.core.edwp.EditOp` records the original
    segment index of ``S`` it consumed (``seg2``), which tBoxSeq construction
    uses to decide which boxes to grow (Sec. IV-B).
    """
    trivial = _sub_trivial(t.num_segments, s.num_segments)
    if trivial is not None:
        return EdwpResult(distance=trivial, edits=[])
    p1 = _spatial_points(t)
    p2 = _spatial_points(s)
    free, fp, fpos = _edwp_dp(p1, p2, keep_parents=True, free_start_row=True)
    anch, ap, apos = _edwp_dp(p1, p2, keep_parents=True, free_start_row=False)
    assert fp is not None and ap is not None
    n = len(p1) - 1
    free_j = min(range(len(free[n])), key=free[n].__getitem__)
    anch_j = min(range(len(anch[n])), key=anch[n].__getitem__)
    if free[n][free_j] <= anch[n][anch_j]:
        edits = _backtrack(p1, p2, fp, fpos, n, free_j)
        return EdwpResult(distance=free[n][free_j], edits=edits)
    edits = _backtrack(p1, p2, ap, apos, n, anch_j)
    return EdwpResult(distance=anch[n][anch_j], edits=edits)
