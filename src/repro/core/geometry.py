"""Planar geometry substrate used throughout the reproduction.

Every distance in the paper reduces to a handful of planar primitives:
Euclidean point distance, the projection of a point onto a segment
(Sec. III-A, the ``ins`` edit), the distance between a point and an
axis-aligned rectangle, and the projection of a rectangle onto a segment
(Sec. IV-A, generalized projections).  Keeping them in one module makes the
dynamic programs in :mod:`repro.core.edwp` and :mod:`repro.index.tboxseq`
easy to audit against the paper's equations.

All functions accept plain ``(x, y)`` tuples (or any 2-sequences of floats)
and return plain floats/tuples so they can be used from tight DP loops
without numpy boxing overhead.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

Point = Tuple[float, float]

__all__ = [
    "Point",
    "point_distance",
    "squared_point_distance",
    "interpolate",
    "project_point_on_segment",
    "point_segment_distance",
    "clamp",
    "point_rect_distance",
    "project_point_on_rect",
    "project_rect_on_segment",
    "polyline_rect_distance",
    "polyline_rects_distance",
    "segment_rect_distance",
    "segment_length",
    "polyline_length",
]


def point_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Euclidean distance between two planar points."""
    dx = p[0] - q[0]
    dy = p[1] - q[1]
    return math.hypot(dx, dy)


def squared_point_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Squared Euclidean distance (cheaper when only comparisons matter)."""
    dx = p[0] - q[0]
    dy = p[1] - q[1]
    return dx * dx + dy * dy


def interpolate(p: Sequence[float], q: Sequence[float], fraction: float) -> Point:
    """Point at ``fraction`` of the way from ``p`` to ``q`` (0 -> p, 1 -> q)."""
    return (p[0] + (q[0] - p[0]) * fraction, p[1] + (q[1] - p[1]) * fraction)


def project_point_on_segment(
    a: Sequence[float], b: Sequence[float], s: Sequence[float]
) -> Tuple[Point, float]:
    """Project point ``s`` onto segment ``[a, b]``.

    Returns ``(closest_point, fraction)`` where ``fraction`` in ``[0, 1]`` is
    the position of the closest point along the segment.  This realizes the
    paper's projection operator ``p^{ins(e, s)} = argmin_{p in e} dist(p, s)``.
    Degenerate (zero-length) segments project everything onto ``a``.
    """
    ax, ay = a[0], a[1]
    bx, by = b[0], b[1]
    dx = bx - ax
    dy = by - ay
    norm_sq = dx * dx + dy * dy
    if norm_sq <= 0.0:
        return (ax, ay), 0.0
    t = ((s[0] - ax) * dx + (s[1] - ay) * dy) / norm_sq
    if t <= 0.0:
        return (ax, ay), 0.0
    if t >= 1.0:
        return (bx, by), 1.0
    return (ax + t * dx, ay + t * dy), t


def point_segment_distance(
    a: Sequence[float], b: Sequence[float], s: Sequence[float]
) -> float:
    """Distance from point ``s`` to segment ``[a, b]``."""
    closest, _ = project_point_on_segment(a, b, s)
    return point_distance(closest, s)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if value < low:
        return low
    if value > high:
        return high
    return value


def point_rect_distance(
    p: Sequence[float], xmin: float, ymin: float, xmax: float, ymax: float
) -> float:
    """Distance from a point to an axis-aligned rectangle (0 if inside).

    This is ``dist(s, b)`` from Sec. IV-A: the minimum distance between an
    st-point and any point bounded by the st-box.
    """
    dx = 0.0
    if p[0] < xmin:
        dx = xmin - p[0]
    elif p[0] > xmax:
        dx = p[0] - xmax
    dy = 0.0
    if p[1] < ymin:
        dy = ymin - p[1]
    elif p[1] > ymax:
        dy = p[1] - ymax
    if dx == 0.0:
        return dy
    if dy == 0.0:
        return dx
    return math.hypot(dx, dy)


def project_point_on_rect(
    p: Sequence[float], xmin: float, ymin: float, xmax: float, ymax: float
) -> Point:
    """Closest point of the rectangle to ``p`` (the projection onto the box)."""
    return (clamp(p[0], xmin, xmax), clamp(p[1], ymin, ymax))


def project_rect_on_segment(
    a: Sequence[float],
    b: Sequence[float],
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
) -> Tuple[Point, float]:
    """Point of segment ``[a, b]`` closest to the rectangle — exactly.

    Realizes the paper's reverse projection ``p^{ins(e, b)}``: the point on a
    trajectory segment that is spatially closest to an st-box.  The distance
    profile ``t -> dist(lerp(a, b, t), rect)`` is convex and piecewise smooth
    with breakpoints only where the segment crosses the four supporting lines
    of the rectangle; within a smooth region the closest rectangle feature is
    either an edge (profile affine in ``t``, minimized at a region boundary)
    or a corner (profile is distance to a fixed point, minimized at the
    corner's projection).  The exact minimum is therefore attained at one of
    at most ten candidates: the endpoints, the four line crossings, and the
    four corner projections.

    Returns ``(closest_point, fraction)``.
    """
    ax, ay = a[0], a[1]
    bx, by = b[0], b[1]
    dx = bx - ax
    dy = by - ay

    candidates = [0.0, 1.0]
    if dx != 0.0:
        candidates.append((xmin - ax) / dx)
        candidates.append((xmax - ax) / dx)
    if dy != 0.0:
        candidates.append((ymin - ay) / dy)
        candidates.append((ymax - ay) / dy)
    norm_sq = dx * dx + dy * dy
    if norm_sq > 0.0:
        for cx, cy in ((xmin, ymin), (xmin, ymax), (xmax, ymin), (xmax, ymax)):
            candidates.append(((cx - ax) * dx + (cy - ay) * dy) / norm_sq)

    best_t = 0.0
    best_d = math.inf
    for t in candidates:
        if t < 0.0:
            t = 0.0
        elif t > 1.0:
            t = 1.0
        d = point_rect_distance(
            (ax + dx * t, ay + dy * t), xmin, ymin, xmax, ymax
        )
        if d < best_d:
            best_d = d
            best_t = t
            if d == 0.0:
                break
    return (ax + dx * best_t, ay + dy * best_t), best_t


def segment_rect_distance(
    a: Sequence[float],
    b: Sequence[float],
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
) -> float:
    """Minimum distance between segment ``[a, b]`` and a rectangle."""
    closest, _ = project_rect_on_segment(a, b, xmin, ymin, xmax, ymax)
    return point_rect_distance(closest, xmin, ymin, xmax, ymax)


def polyline_rect_distance(
    points, xmin: float, ymin: float, xmax: float, ymax: float
) -> float:
    """Exact minimum distance from a polyline to a rectangle, vectorized.

    ``points`` is an ``(n, 2)`` array of polyline vertices.  Uses the same
    candidate-point argument as :func:`project_rect_on_segment` — per
    segment the minimum is attained at an endpoint, a crossing of one of
    the rectangle's four supporting lines, or a corner projection — with
    all candidates evaluated in one numpy pass.  This is the cheap
    pre-filter TrajTree applies before running the full box-sequence DP,
    in its batch-of-one form (:func:`polyline_rects_distance` is the
    implementation; frontier batching calls it with all children's
    rectangles at once).
    """
    return float(
        polyline_rects_distance(points, [[xmin, ymin, xmax, ymax]])[0]
    )


def polyline_rects_distance(points, rects) -> "object":
    """Exact minimum polyline-to-rectangle distance for *many* rectangles.

    ``points`` is an ``(n, 2)`` array of polyline vertices and ``rects`` an
    ``(r, 4)`` array of ``(xmin, ymin, xmax, ymax)`` rows.  Returns an
    ``(r,)`` float64 array where entry ``i`` equals
    :func:`polyline_rect_distance` against rectangle ``i`` — the same
    ten-candidate argument, evaluated for every rectangle in one numpy
    pass.  This is how TrajTree's frontier batching computes the cheap
    quick-bound pre-filter for all children of a dequeued node at once.
    """
    import numpy as np

    pts = np.asarray(points, dtype=np.float64)
    R = np.asarray(rects, dtype=np.float64)
    if R.ndim != 2 or R.shape[1] != 4:
        raise ValueError(f"rects must be an (r, 4) array, got shape {R.shape}")
    if pts.shape[0] == 0:
        raise ValueError("empty polyline has no distance")
    xmin = R[:, 0][:, None, None]
    ymin = R[:, 1][:, None, None]
    xmax = R[:, 2][:, None, None]
    ymax = R[:, 3][:, None, None]
    if pts.shape[0] == 1:
        px = pts[0, 0]
        py = pts[0, 1]
        dx = np.maximum(np.maximum(xmin - px, px - xmax), 0.0)
        dy = np.maximum(np.maximum(ymin - py, py - ymax), 0.0)
        return np.hypot(dx, dy)[:, 0, 0]

    a = pts[:-1]                          # (n, 2)
    d = pts[1:] - a                       # (n, 2)
    norm_sq = (d * d).sum(axis=1)         # (n,)
    safe = np.where(norm_sq > 0.0, norm_sq, 1.0)
    ax = a[:, 0][None, :, None]
    ay = a[:, 1][None, :, None]
    dx = d[:, 0][None, :, None]
    dy = d[:, 1][None, :, None]

    n = a.shape[0]
    r = R.shape[0]
    zeros = np.zeros((1, n, 1))
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_x = np.where(dx != 0.0, dx, np.inf)
        inv_y = np.where(dy != 0.0, dy, np.inf)
        cand = [
            zeros,
            np.ones((1, n, 1)),
            (xmin - ax) / inv_x,
            (xmax - ax) / inv_x,
            (ymin - ay) / inv_y,
            (ymax - ay) / inv_y,
        ]
        for cx, cy in ((xmin, ymin), (xmin, ymax), (xmax, ymin), (xmax, ymax)):
            cand.append(
                ((cx - ax) * dx + (cy - ay) * dy) / safe[None, :, None]
            )
    ts = np.concatenate(
        [np.broadcast_to(c, (r, n, 1)) for c in cand], axis=2
    )                                      # (r, n, 10)
    np.clip(ts, 0.0, 1.0, out=ts)
    px = ax + ts * dx
    py = ay + ts * dy
    ddx = np.maximum(np.maximum(xmin - px, px - xmax), 0.0)
    ddy = np.maximum(np.maximum(ymin - py, py - ymax), 0.0)
    return np.sqrt(ddx * ddx + ddy * ddy).min(axis=(1, 2))


def segment_length(a: Sequence[float], b: Sequence[float]) -> float:
    """Length of segment ``[a, b]`` (paper Eq. 1 building block)."""
    return point_distance(a, b)


def polyline_length(points: Sequence[Sequence[float]]) -> float:
    """Total length of a polyline given its vertex list."""
    total = 0.0
    for i in range(1, len(points)):
        total += point_distance(points[i - 1], points[i])
    return total
