"""NumPy-vectorized EDwP kernels — the ``"numpy"`` backend.

This module reimplements the cell DP of :mod:`repro.core.edwp` over
preallocated coordinate arrays.  Two ideas stack:

Anti-diagonal vectorization
    The recurrence at cell ``(i, j)`` reads ``(i-1, j-1)``, ``(i, j-1)`` and
    ``(i-1, j)``, so cells on one anti-diagonal ``i + j = d`` are mutually
    independent and are computed in a single vectorized step from the two
    preceding diagonals.  The sweep runs ``|T1| + |T2|`` python iterations
    instead of ``|T1| * |T2|``.

Lockstep batching
    One query is matched against ``B`` trajectories *simultaneously*: every
    diagonal buffer carries a leading batch axis, so the fixed numpy
    dispatch cost per diagonal is amortized over the whole batch.  This is
    where the bulk of the speedup comes from (per-diagonal arrays are short,
    so single-pair vectorization is dominated by per-call overhead) and it
    is exactly the shape of the hot workloads: TrajTree leaf refinement,
    sequential-scan oracles, and the Fig. 5/6 benchmark sweeps.

Variable-length batches are exact, not approximate.  Shorter trajectories
are padded by repeating their final point, and padding reproduces the
reference DP's behaviour bit-for-bit because of an invariant of the edit
grammar: when one side is consumed through its last segment, its carried
position *is exactly its final sample* (every arrival into the last
row/column either places the position on that sample or inherits it), so
the padded "next segment" is zero-length, the projection degenerates to
"stay in place", and the inserted transition costs exactly what the
reference's exhausted-side rule charges.  Per-pair answers are read off at
each pair's own corner cell; cells beyond a pair's extent compute garbage
that no in-extent cell ever reads (transitions only move forward).

Numerical contract
------------------
The kernel mirrors the reference DP operation-for-operation — the same
additions in the same order, ``np.abs`` on complex128 (which is
``hypot(dx, dy)``) for ``math.hypot``, exact clamp-to-endpoint projection
rules, and the same strict-``<`` candidate priority (``rep``, then ``ins``
on T1, then ``ins`` on T2) — so results match the pure-Python backend to
float tolerance everywhere, including degenerate zero-length segments (see
DESIGN.md, "Dual-backend EDwP kernels").  ``tests/test_edwp_fast.py``
enforces this property.

Spatial points are packed as complex numbers (``x + yj``): ``np.abs`` of a
complex difference is the point distance, and one complex array halves the
number of numpy operations versus separate x/y arrays.  The ``allow_stay``
option of the reference DP is not reproduced here because no public entry
point uses it.

This module is self-contained (numpy only) and is dispatched to by
:func:`repro.core.edwp.edwp` and friends when the ``"numpy"`` backend is
active; the pure-Python DP remains the reference oracle.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

__all__ = [
    "trajectory_complex",
    "dp_last_rows",
    "edwp_numpy",
    "edwp_many_numpy",
    "edwp_sub_numpy",
    "edwp_sub_many_numpy",
    "edwp_sub_fast_numpy",
    "edwp_sub_fast_queries_numpy",
    "prefix_dist_numpy",
]

_INF = math.inf

#: Lockstep batch width for :func:`edwp_many_numpy`.  Large enough to
#: amortize per-diagonal dispatch, small enough that per-diagonal buffers
#: stay cache-resident and length skew inside one chunk is bounded.
BATCH_CHUNK = 64


def trajectory_complex(traj) -> np.ndarray:
    """The trajectory's spatial points as a cached ``(n,)`` complex128 array.

    Piggybacks on :meth:`repro.core.trajectory.Trajectory.coords`, which
    caches the contiguous ``(n, 2)`` float64 matrix on the instance, so
    repeated distance calls against the same trajectory (batch queries,
    index traversals) pay the conversion once.
    """
    coords = traj.coords()
    return coords.view(np.complex128)[:, 0]


def dp_last_rows(
    z1: np.ndarray, Z2: np.ndarray, free_start_row: bool = False
) -> np.ndarray:
    """Lockstep anti-diagonal DP of one query against a batch of targets.

    Parameters
    ----------
    z1:
        ``(n1 + 1,)`` complex query points, ``n1 >= 1`` segments.
    Z2:
        ``(B, m)`` complex target points; rows shorter than ``m`` points are
        padded by repeating their final point (exact, see module docstring).
        ``m >= 2``.
    free_start_row:
        Make every cell ``(0, j)`` free — the EDwPsub mechanism of skipping
        any prefix of the second argument (Eq. 6).

    Returns
    -------
    ``(B, m)`` array: the DP's last row ``cost[n1][0..m-1]`` per pair.  For
    a pair with ``n2`` segments only columns ``0..n2`` are meaningful:
    ``row[n2]`` is the plain EDwP distance, ``row[:n2 + 1].min()`` is
    PrefixDist (anchored) or the one-pass EDwPsub (free start row).
    """
    n1 = z1.shape[0] - 1
    batch, m2 = Z2.shape
    n2 = m2 - 1

    # Padded diagonal buffers: cell i lives at column i + 1; sentinel
    # columns at both ends (and any cell not on the diagonal) keep cost inf
    # with a finite dummy position, so invalid transitions lose every
    # strict-< race.  Three buffer sets rotate through diagonals d-2, d-1, d.
    width = n1 + 3
    cost_p2 = np.full((batch, width), _INF)
    u_p2 = np.zeros((batch, width), dtype=np.complex128)
    v_p2 = np.zeros((batch, width), dtype=np.complex128)
    cost_p1 = np.full((batch, width), _INF)
    u_p1 = np.zeros((batch, width), dtype=np.complex128)
    v_p1 = np.zeros((batch, width), dtype=np.complex128)
    cost_d = np.full((batch, width), _INF)
    u_d = np.zeros((batch, width), dtype=np.complex128)
    v_d = np.zeros((batch, width), dtype=np.complex128)

    cost_p1[:, 1] = 0.0
    u_p1[:, 1] = z1[0]
    v_p1[:, 1] = Z2[:, 0]

    # "Next point" arrays, shifted by one with the final point repeated.
    # The repeat makes the segment past an exhausted side zero-length, which
    # reproduces the reference's stay-in-place rule exactly (the carried
    # position at the boundary is exactly the final sample, so the
    # projection's norm_sq == 0 branch returns it unchanged).
    z1_next = np.concatenate([z1[1:], z1[-1:]])
    Z2_next = np.concatenate([Z2[:, 1:], Z2[:, -1:]], axis=1)

    last_rows = np.full((batch, n2 + 1), _INF)

    for d in range(1, n1 + n2 + 1):
        lo = d - n2 if d > n2 else 0
        hi = n1 if d > n1 else d
        cells = slice(lo + 1, hi + 2)       # padded columns of cells (i, d-i)
        preds = slice(lo, hi + 1)           # same cells shifted to i-1

        b1 = z1[lo:hi + 1][None, :]         # P1[i], broadcast over the batch
        b2 = Z2[:, d - hi:d - lo + 1][:, ::-1]          # P2[d-i] per pair

        # Written in place; `best` is a view into the committed cost buffer
        # and candidates fold in with np.minimum, which keeps the earlier
        # candidate on ties — the reference's strict-< priority (rep, then
        # ins on T1, then ins on T2).
        cost_d.fill(_INF)       # u_d/v_d keep stale finite values: cells
        best = cost_d[:, cells]  # outside `cells` stay inf and never win
        best_u = u_d[:, cells]
        best_v = v_d[:, cells]

        # --- rep: from (i-1, j-1) on diagonal d-2 ----------------------- #
        a1 = u_p2[:, preds]
        a2 = v_p2[:, preds]
        best[...] = cost_p2[:, preds] + (
            np.abs(a1 - a2) + np.abs(b1 - b2)
        ) * (np.abs(a1 - b1) + np.abs(a2 - b2))
        best_u[...] = b1
        best_v[...] = b2

        # --- ins on T1: from (i, j-1) on diagonal d-1 ------------------- #
        # T2 advances to P2[j]; T1 advances to the projection of P2[j] on
        # its remaining segment (degenerate when T1 is exhausted).
        a1 = u_p1[:, cells]
        a2 = v_p1[:, cells]
        seg_end = z1_next[lo:hi + 1][None, :]           # P1[i+1]
        seg = seg_end - a1
        seg_c = seg.conj()
        norm_sq = (seg_c * seg).real                    # == |seg|^2 exactly
        t = (seg_c * (b2 - a1)).real / (norm_sq + (norm_sq <= 0.0))
        np.maximum(t, 0.0, out=t)       # t == 0 gives a1 + 0*seg == a1 and
        t_hi = t >= 1.0                 # covers the norm_sq == 0 case too
        np.minimum(t, 1.0, out=t)
        q = a1 + t * seg
        q = np.where(t_hi, seg_end, q)
        total = cost_p1[:, cells] + (
            np.abs(a1 - a2) + np.abs(q - b2)
        ) * (np.abs(a1 - q) + np.abs(a2 - b2))
        take = total < best
        np.copyto(best_u, q, where=take)
        np.minimum(best, total, out=best)

        # --- ins on T2: from (i-1, j) on diagonal d-1 — symmetric ------- #
        a1 = u_p1[:, preds]
        a2 = v_p1[:, preds]
        seg_end = Z2_next[:, d - hi:d - lo + 1][:, ::-1]    # P2[j+1]
        seg = seg_end - a2
        seg_c = seg.conj()
        norm_sq = (seg_c * seg).real
        t = (seg_c * (b1 - a2)).real / (norm_sq + (norm_sq <= 0.0))
        np.maximum(t, 0.0, out=t)
        t_hi = t >= 1.0
        np.minimum(t, 1.0, out=t)
        q = a2 + t * seg
        q = np.where(t_hi, seg_end, q)
        total = cost_p1[:, preds] + (
            np.abs(a1 - a2) + np.abs(b1 - q)
        ) * (np.abs(a1 - b1) + np.abs(a2 - q))
        take = total < best
        np.copyto(best_u, b1, where=take)
        np.copyto(best_v, q, where=take)
        np.minimum(best, total, out=best)

        # --- commit the diagonal ---------------------------------------- #
        if free_start_row and lo == 0:      # cell (0, d) is free
            cost_d[:, 1] = 0.0
            u_d[:, 1] = z1[0]
            v_d[:, 1] = Z2[:, d]
        if hi == n1:
            last_rows[:, d - n1] = cost_d[:, n1 + 1]

        cost_p2, u_p2, v_p2, cost_p1, u_p1, v_p1, cost_d, u_d, v_d = (
            cost_p1, u_p1, v_p1, cost_d, u_d, v_d, cost_p2, u_p2, v_p2,
        )

    return last_rows


def dp_own_rows(
    Z1: np.ndarray,
    z2: np.ndarray,
    seg_counts: np.ndarray,
    free_start_row: bool = False,
) -> np.ndarray:
    """Lockstep anti-diagonal DP of a *batch of queries* against one target.

    The mirror image of :func:`dp_last_rows`: the batch axis rides on the
    first side instead of the second.  This is the shape of build-time
    pivot selection (Alg. 1), where every node trajectory is measured
    against one shared pivot.

    Parameters
    ----------
    Z1:
        ``(B, m1)`` complex query points; rows shorter than ``m1`` points
        are padded by repeating their final point.
    z2:
        ``(m2,)`` complex target points, ``m2 >= 2``.
    seg_counts:
        ``(B,)`` true segment counts per row of ``Z1`` (each ``>= 1``).
    free_start_row:
        Make every cell ``(0, j)`` free — skip any prefix of ``z2``.

    Returns
    -------
    ``(B, m2 - 1 + 1)`` array: for pair ``b``, its *own* last row
    ``cost[n1_b][0..n2]``.  Padded rows beyond a pair's extent keep
    computing, but their cells are never read — each pair's row is
    captured on the diagonal sweep as it passes through ``i == n1_b``, and
    cells ``(i <= n1_b, j)`` only ever read unpadded ``Z1`` data, so the
    padding-exactness argument of the module docstring carries over
    unchanged.
    """
    batch, m1 = Z1.shape
    n1 = m1 - 1
    n2 = z2.shape[0] - 1

    width = n1 + 3
    cost_p2 = np.full((batch, width), _INF)
    u_p2 = np.zeros((batch, width), dtype=np.complex128)
    v_p2 = np.zeros((batch, width), dtype=np.complex128)
    cost_p1 = np.full((batch, width), _INF)
    u_p1 = np.zeros((batch, width), dtype=np.complex128)
    v_p1 = np.zeros((batch, width), dtype=np.complex128)
    cost_d = np.full((batch, width), _INF)
    u_d = np.zeros((batch, width), dtype=np.complex128)
    v_d = np.zeros((batch, width), dtype=np.complex128)

    cost_p1[:, 1] = 0.0
    u_p1[:, 1] = Z1[:, 0]
    v_p1[:, 1] = z2[0]

    Z1_next = np.concatenate([Z1[:, 1:], Z1[:, -1:]], axis=1)
    z2_next = np.concatenate([z2[1:], z2[-1:]])

    own_rows = np.full((batch, n2 + 1), _INF)
    rows_idx = np.arange(batch)

    for d in range(1, n1 + n2 + 1):
        lo = d - n2 if d > n2 else 0
        hi = n1 if d > n1 else d
        cells = slice(lo + 1, hi + 2)
        preds = slice(lo, hi + 1)

        b1 = Z1[:, lo:hi + 1]                       # P1[i] per pair
        b2 = z2[d - hi:d - lo + 1][::-1][None, :]   # P2[d-i], shared

        # Same fold as :func:`dp_last_rows` with the sides' roles mirrored:
        # P1 slices are per-pair here, P2 slices are shared.
        cost_d.fill(_INF)
        best = cost_d[:, cells]
        best_u = u_d[:, cells]
        best_v = v_d[:, cells]

        # --- rep: from (i-1, j-1) on diagonal d-2 ----------------------- #
        a1 = u_p2[:, preds]
        a2 = v_p2[:, preds]
        best[...] = cost_p2[:, preds] + (
            np.abs(a1 - a2) + np.abs(b1 - b2)
        ) * (np.abs(a1 - b1) + np.abs(a2 - b2))
        best_u[...] = b1
        best_v[...] = b2

        # --- ins on T1: from (i, j-1) on diagonal d-1 ------------------- #
        a1 = u_p1[:, cells]
        a2 = v_p1[:, cells]
        seg_end = Z1_next[:, lo:hi + 1]             # P1[i+1] per pair
        seg = seg_end - a1
        seg_c = seg.conj()
        norm_sq = (seg_c * seg).real
        t = (seg_c * (b2 - a1)).real / (norm_sq + (norm_sq <= 0.0))
        np.maximum(t, 0.0, out=t)
        t_hi = t >= 1.0
        np.minimum(t, 1.0, out=t)
        q = a1 + t * seg
        q = np.where(t_hi, seg_end, q)
        total = cost_p1[:, cells] + (
            np.abs(a1 - a2) + np.abs(q - b2)
        ) * (np.abs(a1 - q) + np.abs(a2 - b2))
        take = total < best
        np.copyto(best_u, q, where=take)
        np.minimum(best, total, out=best)

        # --- ins on T2: from (i-1, j) on diagonal d-1 — symmetric ------- #
        a1 = u_p1[:, preds]
        a2 = v_p1[:, preds]
        seg_end = z2_next[d - hi:d - lo + 1][::-1][None, :]     # P2[j+1]
        seg = seg_end - a2
        seg_c = seg.conj()
        norm_sq = (seg_c * seg).real
        t = (seg_c * (b1 - a2)).real / (norm_sq + (norm_sq <= 0.0))
        np.maximum(t, 0.0, out=t)
        t_hi = t >= 1.0
        np.minimum(t, 1.0, out=t)
        q = a2 + t * seg
        q = np.where(t_hi, seg_end, q)
        total = cost_p1[:, preds] + (
            np.abs(a1 - a2) + np.abs(b1 - q)
        ) * (np.abs(a1 - b1) + np.abs(a2 - q))
        take = total < best
        np.copyto(best_u, b1, where=take)
        np.copyto(best_v, q, where=take)
        np.minimum(best, total, out=best)

        # --- commit the diagonal ---------------------------------------- #
        if free_start_row and lo == 0:      # cell (0, d) is free
            cost_d[:, 1] = 0.0
            u_d[:, 1] = Z1[:, 0]
            v_d[:, 1] = z2[d]
        # Capture each pair's own last row as the wavefront crosses it.
        hit = (seg_counts >= lo) & (seg_counts <= hi)
        if hit.any():
            idx = rows_idx[hit]
            own_rows[idx, d - seg_counts[idx]] = (
                cost_d[idx, seg_counts[idx] + 1]
            )

        cost_p2, u_p2, v_p2, cost_p1, u_p1, v_p1, cost_d, u_d, v_d = (
            cost_p1, u_p1, v_p1, cost_d, u_d, v_d, cost_p2, u_p2, v_p2,
        )

    return own_rows


def _batch_targets(targets: Sequence[np.ndarray]):
    """Pack complex target arrays into a padded ``(B, m)`` matrix."""
    seg_counts = np.array([z.shape[0] - 1 for z in targets])
    m2 = int(seg_counts.max()) + 1
    Z2 = np.empty((len(targets), m2), dtype=np.complex128)
    for row, z in enumerate(targets):
        Z2[row, :z.shape[0]] = z
        Z2[row, z.shape[0]:] = z[-1]
    return Z2, seg_counts


def edwp_numpy(t1, t2) -> float:
    """EDwP via the vectorized kernel.  Callers handle trivial base cases."""
    z1 = trajectory_complex(t1)
    z2 = trajectory_complex(t2)
    return float(dp_last_rows(z1, z2[None, :])[0, -1])


def _lockstep_batches(trajectories: Sequence, fill: float, kernel) -> List[float]:
    """Shared driver for the one-vs-many entry points.

    Items without segments keep ``fill`` (the caller's base case) and
    never enter a kernel; survivors are sorted by length so chunks are
    skew-free, packed in :data:`BATCH_CHUNK`-sized chunks with
    repeated-final-point padding, and per-pair answers scattered back in
    input order.  ``kernel(Z, seg_counts)`` returns one value per row.
    """
    out = [fill] * len(trajectories)
    live = [i for i, t in enumerate(trajectories) if t.num_segments > 0]
    live.sort(key=lambda i: len(trajectories[i]))
    for start in range(0, len(live), BATCH_CHUNK):
        chunk = live[start:start + BATCH_CHUNK]
        Z, seg_counts = _batch_targets(
            [trajectory_complex(trajectories[i]) for i in chunk]
        )
        for i, value in zip(chunk, kernel(Z, seg_counts)):
            out[i] = float(value)
    return out


def edwp_many_numpy(query, trajectories: Sequence) -> List[float]:
    """Raw EDwP of one query against many trajectories, lockstep-batched.

    Callers guarantee the query has >= 1 segment; targets without segments
    get ``inf`` (the recursion's base case) without entering the kernel.
    Targets are processed in length-sorted chunks of :data:`BATCH_CHUNK` so
    one long outlier cannot stretch the DP sweep of a whole batch.
    """
    z1 = trajectory_complex(query)

    def corners(Z2, seg_counts):
        return dp_last_rows(z1, Z2)[np.arange(len(seg_counts)), seg_counts]

    return _lockstep_batches(trajectories, _INF, corners)


def edwp_sub_many_numpy(query, trajectories: Sequence) -> List[float]:
    """Two-pass EDwPsub of one query against many targets, lockstep-batched.

    Callers guarantee the query has >= 1 segment; targets without segments
    get ``inf`` (the recursion's base case) without entering the kernel.
    Both DP passes (free-start-row and anchored) run over the same padded
    batch; each pair's value is the minimum over its *own* last-row
    columns ``0..n2`` of both passes — padding exactness carries over
    because every cell ``(n1, j)`` with ``j <= n2`` only ever reads cells
    with smaller-or-equal column indices.
    """
    z1 = trajectory_complex(query)

    def two_pass_row_min(Z2, seg_counts):
        free = dp_last_rows(z1, Z2, free_start_row=True)
        anchored = dp_last_rows(z1, Z2, free_start_row=False)
        both = np.minimum(free, anchored)
        cols = np.arange(both.shape[1])
        in_extent = cols[None, :] <= seg_counts[:, None]
        return np.where(in_extent, both, _INF).min(axis=1)

    return _lockstep_batches(trajectories, _INF, two_pass_row_min)


def edwp_sub_numpy(t, s) -> float:
    """Two-pass EDwPsub (Eq. 6) via the vectorized kernel."""
    z1 = trajectory_complex(t)
    z2 = trajectory_complex(s)[None, :]
    free = dp_last_rows(z1, z2, free_start_row=True)
    anchored = dp_last_rows(z1, z2, free_start_row=False)
    return float(min(free.min(), anchored.min()))


def edwp_sub_fast_numpy(t, s) -> float:
    """One-pass EDwPsub heuristic (free-start DP only), vectorized."""
    z1 = trajectory_complex(t)
    z2 = trajectory_complex(s)[None, :]
    return float(dp_last_rows(z1, z2, free_start_row=True).min())


def edwp_sub_fast_queries_numpy(queries: Sequence, target) -> List[float]:
    """One-pass EDwPsub of *many queries* against one shared target.

    The batch-first shape of Alg. 1 pivot selection: every trajectory of a
    node measured against one pivot.  Callers guarantee the target has
    >= 1 segment; queries without segments match trivially (0.0) without
    entering the kernel.  Each value equals
    ``edwp_sub_fast(query, target)`` on this backend.
    """
    z2 = trajectory_complex(target)

    def own_row_min(Z1, seg_counts):
        return dp_own_rows(Z1, z2, seg_counts, free_start_row=True).min(axis=1)

    return _lockstep_batches(queries, 0.0, own_row_min)


def prefix_dist_numpy(t, s) -> float:
    """PrefixDist (Eq. 5) via the vectorized kernel."""
    z1 = trajectory_complex(t)
    z2 = trajectory_complex(s)[None, :]
    return float(dp_last_rows(z1, z2, free_start_row=False).min())
