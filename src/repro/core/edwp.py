"""Edit Distance with Projections (EDwP) — paper Sec. III-A.

EDwP computes the cheapest sequence of *replacement* and *insert* edits that
make two trajectories identical.  A replacement matches two st-segments at a
cost equal to the summed distances of their endpoints (Eq. 2), weighted by
*coverage* — the combined length of the matched pieces (Eq. 3).  An insert
splits a segment at the *projection* of the other trajectory's next sampled
point, at no direct cost; the cost is incurred when the induced sub-segment
is subsequently replaced.

Dynamic program
---------------
The recursive definition in the paper admits unbounded chains of free
inserts, so (as the paper's own ``O((|T1|+|T2|)^2)`` complexity statement
implies) the practical algorithm is a quadratic cell DP.  State ``(i, j)``
means "T1 is consumed through segment ``i``, T2 through segment ``j``", and
each cell additionally carries the *current position* on each trajectory:
either the sampled point ``P[i]`` or, when the cell was entered through an
insert, the interpolated projection point.  Transitions into ``(i, j)``:

``rep``      from ``(i-1, j-1)``: replace the two current segments wholesale.
``ins(T1)``  from ``(i, j-1)``:   split T1's current segment at the
             projection of ``P2[j]`` and replace the first piece with T2's
             segment; T1 stays within segment ``i``.
``ins(T2)``  from ``(i-1, j)``:   symmetric.

When one side is exhausted its remaining segment degenerates to a point,
which reproduces the zero-length-split behaviour of the recursive definition
(and the exact numbers of the paper's Appendix A counterexample).

Timestamps never enter the cost: EDwP is a purely spatial distance, and the
timestamp assigned to an inserted point (proportional to the spatial split,
Sec. III-A) only matters to consumers of the alignment.

Dual-backend architecture
-------------------------
The DP has two interchangeable realizations (see DESIGN.md, "Dual-backend
EDwP kernels"):

``"python"``
    The reference implementation in this module — a readable cell-by-cell
    loop over plain floats, easy to audit against the paper's equations.
    This is the default and the oracle the test-suite compares against.
``"numpy"``
    The vectorized kernel in :mod:`repro.core.edwp_fast` — the same DP
    swept anti-diagonally over preallocated coordinate arrays, with a
    lockstep batched mode that computes one query against many targets at
    once.  Matches the reference to float tolerance.
``"native"``
    The numba-compiled scalar kernels in :mod:`repro._native` — the same
    DP as machine code, selectable only when the optional numba dependency
    is installed (DESIGN.md, "Native kernel tier").  Matches the reference
    to float tolerance.

The active backend is selected globally with :func:`set_backend` (or
temporarily with :func:`use_backend`), and every distance entry point also
accepts an explicit ``backend=`` override.  :func:`edwp_many` exposes the
batched kernel directly; TrajTree routes leaf refinement and scan oracles
through it.

Alignment recovery (:func:`edwp_alignment`) always runs the python backend:
backtracking needs the full parent/position matrices, which the vectorized
kernel deliberately does not materialize.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from . import edwp_fast
from .. import _native
from .geometry import Point, point_distance, project_point_on_segment
from .trajectory import Trajectory

__all__ = [
    "EditOp",
    "EdwpResult",
    "edwp",
    "edwp_avg",
    "edwp_many",
    "edwp_alignment",
    "rep_cost",
    "coverage",
    "get_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
    "available_backends",
    "BACKENDS",
    "KNOWN_BACKENDS",
    "BackendError",
    "UnknownBackendError",
    "NativeBackendUnavailableError",
]

#: Every backend name this package knows of, installed or not.  Selection
#: distinguishes a typo (:class:`UnknownBackendError`) from a missing
#: optional dependency (:class:`NativeBackendUnavailableError`).
KNOWN_BACKENDS = ("python", "numpy", "native")


def available_backends() -> tuple:
    """The backend names selectable *right now*: the pure-Python reference
    and the vectorized numpy kernels always, plus the compiled ``"native"``
    tier when numba is installed (``pip install .[native]``)."""
    if _native.numba_available():
        return ("python", "numpy", "native")
    return ("python", "numpy")


#: The selectable DP realizations, snapshotted at import time: the
#: pure-Python reference, the vectorized numpy kernel, and — when numba is
#: installed — the compiled native tier (see module docstring).  Harness
#: loops iterating ``BACKENDS`` therefore automatically cover the native
#: tier on machines that have it.
BACKENDS = available_backends()


class BackendError(ValueError):
    """A backend name could not be selected.

    Subclasses ``ValueError`` so pre-existing ``except ValueError``
    call sites (and tests matching on the message) keep working.
    """


class UnknownBackendError(BackendError):
    """The requested backend name is not one this package knows of."""

    def __init__(self, name: object):
        self.backend = name
        super().__init__(
            f"unknown backend {name!r}; choose from {available_backends()}"
        )


class NativeBackendUnavailableError(BackendError):
    """``"native"`` was requested but numba is not installed."""

    def __init__(self):
        self.backend = "native"
        super().__init__(
            'backend "native" requires numba, which is not installed '
            "(pip install .[native]); available backends: "
            f"{available_backends()}"
        )


def _check_backend(name: str) -> None:
    """Validate a backend name at selection time, with typed errors."""
    if name not in KNOWN_BACKENDS:
        raise UnknownBackendError(name)
    if name == "native" and not _native.numba_available():
        raise NativeBackendUnavailableError()


_active_backend = "python"


def get_backend() -> str:
    """Name of the globally active distance backend."""
    return _active_backend


def set_backend(name: str) -> str:
    """Select the global distance backend; returns the previous one.

    Affects every call that does not pass an explicit ``backend=`` —
    the EDwP family, every baseline comparator in
    :mod:`repro.baselines`, the distance registry, the batched matrix
    engine, TrajTree queries and the CLI.

    Raises :class:`UnknownBackendError` for a name this package does not
    know, and :class:`NativeBackendUnavailableError` when ``"native"`` is
    requested without numba installed (both ``ValueError`` subclasses).
    """
    global _active_backend
    _check_backend(name)
    previous = _active_backend
    _active_backend = name
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Context manager running a block under a specific backend."""
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a per-call ``backend=`` override against the global choice.

    ``None`` means "follow :func:`set_backend`"; anything else must be a
    selectable backend (same typed errors as :func:`set_backend`).  Shared
    by every dual-backend distance — the EDwP family here and the baseline
    comparators in :mod:`repro.baselines` — so one switch governs them all.
    """
    if backend is None:
        return _active_backend
    _check_backend(backend)
    return backend


# Backwards-compatible internal alias (pre-dates the baselines going
# dual-backend, when resolution was EDwP-private).
_resolve_backend = resolve_backend

_REP = 0
_INS1 = 1  # insert on T1 (T2 advances)
_INS2 = 2  # insert on T2 (T1 advances)
_SKIP = 3  # free prefix skip (EDwPsub only)
_OP_NAMES = {_REP: "rep", _INS1: "ins1", _INS2: "ins2"}


def rep_cost(e1_start: Point, e1_end: Point, e2_start: Point, e2_end: Point) -> float:
    """Replacement cost, Eq. 2: ``dist(e1.s1, e2.s1) + dist(e1.s2, e2.s2)``."""
    return point_distance(e1_start, e2_start) + point_distance(e1_end, e2_end)


def coverage(e1_start: Point, e1_end: Point, e2_start: Point, e2_end: Point) -> float:
    """Coverage weight, Eq. 3: ``length(e1) + length(e2)``."""
    return point_distance(e1_start, e1_end) + point_distance(e2_start, e2_end)


@dataclass(frozen=True)
class EditOp:
    """One edit of the optimal alignment.

    Attributes
    ----------
    op:
        ``"rep"``, ``"ins1"`` (insert on T1) or ``"ins2"`` (insert on T2).
        Every op embodies one replacement; the ``ins*`` variants record that
        the replaced piece was created by a projection split.
    piece1 / piece2:
        The matched piece of each trajectory as ``(start_xy, end_xy)``.
    cost:
        The weighted contribution ``rep(...) * Coverage(...)`` of this edit.
    seg1 / seg2:
        Index of the original segment each piece lies on (``-1`` when the
        trajectory was already exhausted and the piece is degenerate).
    """

    op: str
    piece1: Tuple[Point, Point]
    piece2: Tuple[Point, Point]
    cost: float
    seg1: int
    seg2: int


@dataclass
class EdwpResult:
    """Distance plus the optimal edit script (used by tBoxSeq construction)."""

    distance: float
    edits: List[EditOp]


def _spatial_points(traj: Trajectory) -> List[Point]:
    data = traj.data
    return [(float(row[0]), float(row[1])) for row in data]


def _trivial_distance(n1: int, n2: int) -> Optional[float]:
    """Base cases of the paper's recursion in terms of segment counts."""
    if n1 <= 0 and n2 <= 0:
        return 0.0
    if n1 <= 0 or n2 <= 0:
        return math.inf
    return None


def _edwp_dp(
    p1: Sequence[Point],
    p2: Sequence[Point],
    keep_parents: bool,
    free_start_row: bool = False,
    allow_stay: bool = False,
) -> Tuple[
    List[List[float]],
    Optional[List[List[int]]],
    List[List[Tuple[float, float, float, float]]],
]:
    """Core DP.  Returns the full ``(costs, parents, positions)`` matrices.

    ``positions[i][j]`` stores ``(cur1x, cur1y, cur2x, cur2y)`` of the best
    arrival into cell ``(i, j)``; ``parents[i][j]`` stores the op code.

    With ``free_start_row`` every cell ``(0, j)`` costs 0 — the PrefixDist /
    EDwPsub mechanism (Eq. 6) of skipping any prefix of the second argument
    for free.  (Suffix skipping is the caller taking a min over the last row.)

    With ``allow_stay`` the insert transitions additionally consider leaving
    the split side *in place* (a zero-length piece) instead of advancing to
    the projection.  The literal edit grammar only produces in-place splits
    when the projection clamps to the current position, which means the DP
    cannot emulate "the matched sub-trajectory ends here" mid-segment; the
    stay option closes that gap.  It strictly enlarges the searched edit
    space, so it is enabled for the sub-trajectory distance (whose role is a
    *lower bound*, Theorem 2) and disabled for the plain EDwP distance (which
    follows the paper's grammar and reproduces its worked examples).
    """
    n1 = len(p1) - 1
    n2 = len(p2) - 1

    inf = math.inf
    cols = n2 + 1
    rows = n1 + 1
    cost = [[inf] * cols for _ in range(rows)]
    pos = [[(0.0, 0.0, 0.0, 0.0)] * cols for _ in range(rows)]
    parents: Optional[List[List[int]]] = (
        [[-1] * cols for _ in range(rows)] if keep_parents else None
    )

    cost[0][0] = 0.0
    pos[0][0] = (p1[0][0], p1[0][1], p2[0][0], p2[0][1])
    if free_start_row:
        start_x, start_y = p1[0]
        for j in range(cols):
            cost[0][j] = 0.0
            pos[0][j] = (start_x, start_y, p2[j][0], p2[j][1])
            if parents is not None:
                parents[0][j] = _SKIP

    dist = point_distance
    proj = project_point_on_segment

    for i in range(rows):
        row_cost = cost[i]
        row_pos = pos[i]
        for j in range(cols):
            if i == 0 and (j == 0 or free_start_row):
                continue
            best = inf
            best_pos = (0.0, 0.0, 0.0, 0.0)
            best_op = -1

            # rep: from (i-1, j-1) — replace both current segments wholesale.
            if i > 0 and j > 0:
                c = cost[i - 1][j - 1]
                if c < inf:
                    c1x, c1y, c2x, c2y = pos[i - 1][j - 1]
                    a1 = (c1x, c1y)
                    a2 = (c2x, c2y)
                    b1 = p1[i]
                    b2 = p2[j]
                    incr = (dist(a1, a2) + dist(b1, b2)) * (
                        dist(a1, b1) + dist(a2, b2)
                    )
                    total = c + incr
                    if total < best:
                        best = total
                        best_pos = (b1[0], b1[1], b2[0], b2[1])
                        best_op = _REP

            # ins on T1: from (i, j-1) — T2 advances to P2[j]; T1 advances to
            # the projection of P2[j] on its remaining segment.
            if j > 0:
                c = row_cost[j - 1]
                if c < inf:
                    c1x, c1y, c2x, c2y = row_pos[j - 1]
                    a1 = (c1x, c1y)
                    a2 = (c2x, c2y)
                    b2 = p2[j]
                    if i < n1:
                        q, _ = proj(a1, p1[i + 1], b2)
                    else:
                        q = a1
                    base = dist(a1, a2)
                    incr = (base + dist(q, b2)) * (dist(a1, q) + dist(a2, b2))
                    total = c + incr
                    if total < best:
                        best = total
                        best_pos = (q[0], q[1], b2[0], b2[1])
                        best_op = _INS1
                    if allow_stay and q != a1:
                        incr = (base + dist(a1, b2)) * dist(a2, b2)
                        total = c + incr
                        if total < best:
                            best = total
                            best_pos = (a1[0], a1[1], b2[0], b2[1])
                            best_op = _INS1

            # ins on T2: from (i-1, j) — symmetric.
            if i > 0:
                c = cost[i - 1][j]
                if c < inf:
                    c1x, c1y, c2x, c2y = pos[i - 1][j]
                    a1 = (c1x, c1y)
                    a2 = (c2x, c2y)
                    b1 = p1[i]
                    if j < n2:
                        q, _ = proj(a2, p2[j + 1], b1)
                    else:
                        q = a2
                    base = dist(a1, a2)
                    incr = (base + dist(b1, q)) * (dist(a1, b1) + dist(a2, q))
                    total = c + incr
                    if total < best:
                        best = total
                        best_pos = (b1[0], b1[1], q[0], q[1])
                        best_op = _INS2
                    if allow_stay and q != a2:
                        incr = (base + dist(b1, a2)) * dist(a1, b1)
                        total = c + incr
                        if total < best:
                            best = total
                            best_pos = (b1[0], b1[1], a2[0], a2[1])
                            best_op = _INS2

            row_cost[j] = best
            row_pos[j] = best_pos
            if parents is not None:
                parents[i][j] = best_op

    return cost, parents, pos


def edwp(t1: Trajectory, t2: Trajectory, backend: Optional[str] = None) -> float:
    """EDwP distance between two trajectories (paper Sec. III-A).

    Returns 0 when both trajectories have no segments, ``inf`` when exactly
    one of them has no segments (the recursion's base cases), and the optimal
    cumulative weighted edit cost otherwise.

    ``backend`` overrides the global backend (see :func:`set_backend`) for
    this call: ``"python"`` runs the reference DP, ``"numpy"`` the
    vectorized kernel.
    """
    trivial = _trivial_distance(t1.num_segments, t2.num_segments)
    if trivial is not None:
        return trivial
    resolved = _resolve_backend(backend)
    if resolved == "numpy":
        return edwp_fast.edwp_numpy(t1, t2)
    if resolved == "native":
        return _native.load().edwp_native(t1, t2)
    p1 = _spatial_points(t1)
    p2 = _spatial_points(t2)
    cost, _, _ = _edwp_dp(p1, p2, keep_parents=False)
    return cost[len(p1) - 1][len(p2) - 1]


def _normalize(raw: float, denom: float) -> float:
    """Eq. 4 with the degenerate zero-length rule."""
    if denom <= 0.0:
        return 0.0 if raw == 0.0 else math.inf
    return raw / denom


def edwp_avg(t1: Trajectory, t2: Trajectory, backend: Optional[str] = None) -> float:
    """Length-normalized EDwP, Eq. 4: ``EDwP / (length(T1) + length(T2))``.

    The paper's experiments (Sec. V-A) use this variant.  When the combined
    length is zero the trajectories are degenerate points; the distance is 0
    if the raw EDwP is 0 and ``inf`` otherwise.
    """
    return _normalize(edwp(t1, t2, backend=backend), t1.length + t2.length)


def edwp_many(
    query: Trajectory,
    trajectories: Sequence[Trajectory],
    normalized: bool = False,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> List[float]:
    """(Normalized) EDwP of one query against many trajectories.

    The batched entry point of the distance: on the ``"numpy"`` backend the
    whole batch runs through the lockstep kernel
    (:func:`repro.core.edwp_fast.edwp_many_numpy`), amortizing both the
    per-diagonal numpy dispatch and each trajectory's coordinate conversion
    (cached on the instance by :meth:`Trajectory.coords`); on ``"python"``
    it is a plain loop.  TrajTree leaf refinement and the scan oracles route
    through this.

    ``workers`` (optional) fans the batch out over that many threads.
    Worthwhile for multi-query driver loops on large batches; within one
    process the GIL limits the gain, so it is off by default.

    Returns one distance per input trajectory, in order, with the same
    base-case semantics as :func:`edwp` / :func:`edwp_avg` per pair.
    """
    resolved = _resolve_backend(backend)
    trajectories = list(trajectories)
    if workers is not None and workers > 1 and len(trajectories) > 1:
        shard = math.ceil(len(trajectories) / workers)
        parts = [
            trajectories[i:i + shard]
            for i in range(0, len(trajectories), shard)
        ]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = pool.map(
                lambda part: edwp_many(
                    query, part, normalized=normalized, backend=resolved
                ),
                parts,
            )
        return [d for part in results for d in part]

    if resolved == "numpy" and query.num_segments > 0 and trajectories:
        raw = edwp_fast.edwp_many_numpy(query, trajectories)
    elif resolved == "native" and query.num_segments > 0 and trajectories:
        raw = _native.load().edwp_many_native(query, trajectories)
    else:
        raw = [edwp(query, t, backend=resolved) for t in trajectories]
    if not normalized:
        return raw
    q_len = query.length
    return [_normalize(r, q_len + t.length) for r, t in zip(raw, trajectories)]


def edwp_alignment(t1: Trajectory, t2: Trajectory) -> EdwpResult:
    """EDwP distance plus the optimal edit script.

    The script is recovered by backtracking the DP parents and is the
    ingredient tBoxSeq construction needs (Sec. IV-B): one box per
    replacement edit, covering the matched pieces.
    """
    trivial = _trivial_distance(t1.num_segments, t2.num_segments)
    if trivial is not None:
        return EdwpResult(distance=trivial, edits=[])
    p1 = _spatial_points(t1)
    p2 = _spatial_points(t2)
    cost, parents, pos = _edwp_dp(p1, p2, keep_parents=True)
    assert parents is not None
    edits = _backtrack(p1, p2, parents, pos, len(p1) - 1, len(p2) - 1)
    return EdwpResult(distance=cost[len(p1) - 1][len(p2) - 1], edits=edits)


def _backtrack(
    p1: Sequence[Point],
    p2: Sequence[Point],
    parents: List[List[int]],
    pos: List[List[Tuple[float, float, float, float]]],
    end_i: int,
    end_j: int,
) -> List[EditOp]:
    n1 = len(p1) - 1
    n2 = len(p2) - 1
    i, j = end_i, end_j
    edits: List[EditOp] = []
    while i > 0 or j > 0:
        op = parents[i][j]
        if op == _SKIP:
            break
        if op == _REP:
            pi, pj = i - 1, j - 1
        elif op == _INS1:
            pi, pj = i, j - 1
        elif op == _INS2:
            pi, pj = i - 1, j
        else:  # unreachable cell — should not happen for valid inputs
            raise RuntimeError(f"broken DP backtrack at cell ({i}, {j})")
        c1x, c1y, c2x, c2y = pos[pi][pj]
        e1x, e1y, e2x, e2y = pos[i][j]
        start1, end1 = (c1x, c1y), (e1x, e1y)
        start2, end2 = (c2x, c2y), (e2x, e2y)
        cost = (
            point_distance(start1, start2) + point_distance(end1, end2)
        ) * (point_distance(start1, end1) + point_distance(start2, end2))
        # Piece locations: a rep consumes segment i-1 / j-1; an insert keeps
        # one side within its current segment (degenerate, -1, if exhausted).
        if op == _INS1:
            seg1 = i if i < n1 else -1
        else:
            seg1 = i - 1
        if op == _INS2:
            seg2 = j if j < n2 else -1
        else:
            seg2 = j - 1
        edits.append(
            EditOp(
                op=_OP_NAMES[op],
                piece1=(start1, end1),
                piece2=(start2, end2),
                cost=cost,
                seg1=seg1,
                seg2=seg2,
            )
        )
        i, j = pi, pj
    edits.reverse()
    return edits
