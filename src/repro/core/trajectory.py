"""Trajectory data model (paper Definitions 1-3).

A trajectory is a temporally ordered sequence of spatio-temporal points
(st-points).  Each st-point carries a 2-D spatial location and a timestamp.
Following Sec. III, trajectories are *matched as sequences of st-segments*:
the segment connecting consecutive st-points under linear interpolation.

The class stores points in a ``(n, 3)`` float64 numpy array ``[x, y, t]``,
which keeps dataset generation and noise injection vectorized while the
distance DPs read plain floats out of it.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .geometry import interpolate, point_distance

__all__ = ["STPoint", "Segment", "Trajectory"]


class STPoint:
    """A spatio-temporal point ``([x, y], t)`` (paper Definition 1)."""

    __slots__ = ("x", "y", "t")

    def __init__(self, x: float, y: float, t: float = 0.0):
        self.x = float(x)
        self.y = float(y)
        self.t = float(t)

    @property
    def xy(self) -> Tuple[float, float]:
        """Spatial coordinates as a tuple."""
        return (self.x, self.y)

    def distance(self, other: "STPoint") -> float:
        """Spatial Euclidean distance to ``other`` (timestamps ignored)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __iter__(self) -> Iterator[float]:
        return iter((self.x, self.y, self.t))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, STPoint):
            return NotImplemented
        return self.x == other.x and self.y == other.y and self.t == other.t

    def __hash__(self) -> int:
        return hash((self.x, self.y, self.t))

    def __repr__(self) -> str:
        return f"STPoint({self.x:g}, {self.y:g}, t={self.t:g})"


class Segment:
    """An st-segment ``e = [s1, s2]`` under linear interpolation (Def. 3)."""

    __slots__ = ("s1", "s2")

    def __init__(self, s1: STPoint, s2: STPoint):
        self.s1 = s1
        self.s2 = s2

    @property
    def length(self) -> float:
        """Spatial length of the segment."""
        return self.s1.distance(self.s2)

    @property
    def duration(self) -> float:
        """Time spanned by the segment, ``s2.t - s1.t``."""
        return self.s2.t - self.s1.t

    @property
    def speed(self) -> float:
        """``length(e) / (e.s2.t - e.s1.t)`` (Sec. III); inf for zero duration."""
        dt = self.duration
        if dt <= 0.0:
            return math.inf
        return self.length / dt

    def point_at_fraction(self, fraction: float) -> STPoint:
        """Interpolated st-point at ``fraction`` of the segment's length.

        The timestamp follows the paper's insert rule: proportional to the
        spatial split the point induces (Sec. III-A), which under linear
        interpolation is simply the linear blend of the endpoint timestamps.
        """
        x, y = interpolate(self.s1.xy, self.s2.xy, fraction)
        t = self.s1.t + (self.s2.t - self.s1.t) * fraction
        return STPoint(x, y, t)

    def __repr__(self) -> str:
        return f"Segment({self.s1!r} -> {self.s2!r})"


class Trajectory:
    """A temporally ordered sequence of st-points (paper Definition 1).

    Parameters
    ----------
    points:
        Anything convertible to a ``(n, 2)`` or ``(n, 3)`` float array.  With
        two columns, timestamps default to ``0, 1, 2, ...`` (several paper
        examples, e.g. Appendix A, ignore time).
    traj_id:
        Optional identifier used by datasets and indexes.
    label:
        Optional class label (used by the ASL-style classification workload).
    validate:
        When true (default), reject NaNs and decreasing timestamps.
    """

    __slots__ = ("data", "traj_id", "label", "_coords", "_length")

    def __init__(
        self,
        points: Iterable[Sequence[float]],
        traj_id: Optional[int] = None,
        label: Optional[str] = None,
        validate: bool = True,
    ):
        arr = np.asarray(list(points) if not isinstance(points, np.ndarray) else points,
                         dtype=np.float64)
        if arr.ndim == 1 and arr.size == 0:
            arr = arr.reshape(0, 3)
        if arr.ndim != 2:
            raise ValueError(f"points must be a 2-D array, got shape {arr.shape}")
        if arr.shape[0] > 0 and arr.shape[1] == 2:
            times = np.arange(arr.shape[0], dtype=np.float64).reshape(-1, 1)
            arr = np.hstack([arr, times])
        if arr.shape[0] > 0 and arr.shape[1] != 3:
            raise ValueError(
                f"points must have 2 (x, y) or 3 (x, y, t) columns, got {arr.shape[1]}"
            )
        if validate and arr.shape[0] > 0:
            if not np.all(np.isfinite(arr)):
                raise ValueError("trajectory contains non-finite coordinates")
            if np.any(np.diff(arr[:, 2]) < 0):
                raise ValueError("timestamps must be non-decreasing")
        self.data = arr if arr.shape[0] > 0 else np.empty((0, 3), dtype=np.float64)
        self.traj_id = traj_id
        self.label = label
        self._coords = None
        self._length = None

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        """Number of st-points."""
        return self.data.shape[0]

    @property
    def num_segments(self) -> int:
        """Number of st-segments, ``max(0, len(self) - 1)`` (|T| in Sec. III)."""
        return max(0, self.data.shape[0] - 1)

    def __getitem__(self, index: int) -> STPoint:
        row = self.data[index]
        return STPoint(row[0], row[1], row[2])

    def __iter__(self) -> Iterator[STPoint]:
        for row in self.data:
            yield STPoint(row[0], row[1], row[2])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return self.data.shape == other.data.shape and bool(
            np.array_equal(self.data, other.data)
        )

    def __repr__(self) -> str:
        ident = "" if self.traj_id is None else f" id={self.traj_id}"
        lab = "" if self.label is None else f" label={self.label!r}"
        return f"Trajectory(n={len(self)}{ident}{lab})"

    def __getstate__(self):
        # The coordinate cache is derived data: dropping it keeps pickles
        # (index snapshots) lean and rebuilds lazily after load.
        return (self.data, self.traj_id, self.label)

    def __setstate__(self, state) -> None:
        if len(state) == 2 and isinstance(state[1], dict):
            # Legacy pickles (pre coordinate-cache) carry the default slots
            # state ``(None, {slot: value})``.  Accept it so old index
            # snapshots decode far enough to reach the persistence layer's
            # version check instead of dying inside pickle.load.
            slots = state[1]
            self.data = slots["data"]
            self.traj_id = slots.get("traj_id")
            self.label = slots.get("label")
        else:
            self.data, self.traj_id, self.label = state
        self._coords = None
        self._length = None

    # ------------------------------------------------------------------ #
    # segment access
    # ------------------------------------------------------------------ #

    def segment(self, index: int) -> Segment:
        """The ``index``-th st-segment (0-based; paper uses 1-based ``e_i``)."""
        if not 0 <= index < self.num_segments:
            raise IndexError(f"segment index {index} out of range")
        return Segment(self[index], self[index + 1])

    def segments(self) -> Iterator[Segment]:
        """Iterate over all st-segments in order."""
        for i in range(self.num_segments):
            yield self.segment(i)

    # ------------------------------------------------------------------ #
    # derived quantities (paper Sec. III)
    # ------------------------------------------------------------------ #

    @property
    def length(self) -> float:
        """Total spatial length, Eq. 1 (cached; data is immutable by
        convention, like the :meth:`coords` cache).

        The lazy fill follows the idempotent read-compute-assign pattern
        (see :meth:`coords` for the contract), so concurrent first reads
        from multiple threads are safe.
        """
        cached = self._length
        if cached is None:
            if len(self) < 2:
                cached = 0.0
            else:
                diffs = np.diff(self.data[:, :2], axis=0)
                cached = float(np.sqrt((diffs * diffs).sum(axis=1)).sum())
            self._length = cached
        return cached

    @property
    def duration(self) -> float:
        """Elapsed time between first and last st-point."""
        if len(self) < 2:
            return 0.0
        return float(self.data[-1, 2] - self.data[0, 2])

    def segment_lengths(self) -> np.ndarray:
        """Vector of per-segment spatial lengths."""
        if len(self) < 2:
            return np.empty(0, dtype=np.float64)
        diffs = np.diff(self.data[:, :2], axis=0)
        return np.sqrt((diffs * diffs).sum(axis=1))

    def bounding_rect(self) -> Tuple[float, float, float, float]:
        """Axis-aligned spatial bounding rectangle ``(xmin, ymin, xmax, ymax)``."""
        if len(self) == 0:
            raise ValueError("empty trajectory has no bounding rectangle")
        xs = self.data[:, 0]
        ys = self.data[:, 1]
        return float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max())

    # ------------------------------------------------------------------ #
    # sub-trajectories and edits
    # ------------------------------------------------------------------ #

    def subtrajectory(self, start: int, stop: int) -> "Trajectory":
        """Sub-trajectory over points ``[start, stop)`` (paper ``T[a..b]``)."""
        return Trajectory(self.data[start:stop], traj_id=self.traj_id,
                          label=self.label, validate=False)

    def is_subtrajectory_of(self, other: "Trajectory") -> bool:
        """Whether ``self`` appears as a contiguous run of points in ``other``.

        Paper Definition 2: ``T1 ⊆ T2`` iff every point of T1 equals the
        corresponding point of T2 under some offset.
        """
        n, m = len(self), len(other)
        if n == 0:
            return True
        if n > m:
            return False
        for offset in range(m - n + 1):
            if np.array_equal(self.data, other.data[offset:offset + n]):
                return True
        return False

    def with_point_inserted(self, segment_index: int, fraction: float) -> "Trajectory":
        """New trajectory with a point interpolated inside a segment.

        This is the structural half of the paper's ``ins`` edit: splitting
        segment ``e`` at the interpolated point with a timestamp proportional
        to the spatial split.  Used heavily by the noise injectors (Sec. V-C).
        """
        if not 0 <= segment_index < self.num_segments:
            raise IndexError(f"segment index {segment_index} out of range")
        seg = self.segment(segment_index)
        p = seg.point_at_fraction(fraction)
        new_row = np.array([[p.x, p.y, p.t]])
        data = np.vstack([
            self.data[: segment_index + 1],
            new_row,
            self.data[segment_index + 1:],
        ])
        return Trajectory(data, traj_id=self.traj_id, label=self.label, validate=False)

    def point_at_time(self, t: float) -> STPoint:
        """Position at absolute time ``t`` under linear interpolation.

        Clamped to the endpoints outside the observed interval; used by the
        DISSIM baseline, which compares time-synchronized positions.
        """
        if len(self) == 0:
            raise ValueError("empty trajectory has no position")
        times = self.data[:, 2]
        if t <= times[0]:
            return self[0]
        if t >= times[-1]:
            return self[len(self) - 1]
        idx = int(np.searchsorted(times, t, side="right")) - 1
        idx = min(idx, len(self) - 2)
        t0, t1 = times[idx], times[idx + 1]
        if t1 <= t0:
            return self[idx]
        frac = (t - t0) / (t1 - t0)
        return self.segment(idx).point_at_fraction(float(frac))

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #

    def points_list(self) -> List[Tuple[float, float, float]]:
        """Points as a list of ``(x, y, t)`` tuples."""
        return [tuple(row) for row in self.data]

    def spatial(self) -> np.ndarray:
        """``(n, 2)`` view of the spatial coordinates."""
        return self.data[:, :2]

    def coords(self) -> np.ndarray:
        """Cached *contiguous* ``(n, 2)`` float64 spatial matrix.

        The copy (``data`` has row stride 3, so ``spatial()`` is never
        contiguous) is made once per instance and reused; the numpy EDwP
        backend and the batch query APIs read trajectories through this, so
        repeated distances against the same trajectory amortize the
        conversion.  Treat the returned array as read-only: ``Trajectory``
        data is immutable by convention and the cache is never invalidated.

        Concurrency contract (relied on by the query service, asserted by
        ``tests/test_concurrent_caches.py``): the fill is *idempotent* —
        the code reads the slot once into a local, computes a value that
        depends only on the immutable ``data``, and publishes it with a
        single attribute assignment.  Racing first calls may each build
        their own (equal) array; whichever assignment lands last wins, and
        every caller holds a correct, fully constructed result.  Keep this
        shape when editing: never assign the slot before the value is
        complete, and never read the slot twice.
        """
        cached = self._coords
        if cached is None:
            cached = np.ascontiguousarray(self.data[:, :2], dtype=np.float64)
            self._coords = cached
        return cached

    def times(self) -> np.ndarray:
        """``(n,)`` view of the timestamps."""
        return self.data[:, 2]

    def reversed(self) -> "Trajectory":
        """Spatially reversed trajectory with the original time axis."""
        if len(self) == 0:
            return Trajectory([], traj_id=self.traj_id, label=self.label)
        data = self.data[::-1].copy()
        data[:, 2] = self.data[:, 2]
        return Trajectory(data, traj_id=self.traj_id, label=self.label, validate=False)

    def translated(self, dx: float, dy: float) -> "Trajectory":
        """Trajectory shifted spatially by ``(dx, dy)``."""
        data = self.data.copy()
        data[:, 0] += dx
        data[:, 1] += dy
        return Trajectory(data, traj_id=self.traj_id, label=self.label, validate=False)

    @staticmethod
    def from_xy(xy: Sequence[Sequence[float]], dt: float = 1.0,
                traj_id: Optional[int] = None,
                label: Optional[str] = None) -> "Trajectory":
        """Build from spatial coordinates with uniform time spacing ``dt``."""
        arr = np.asarray(xy, dtype=np.float64)
        if arr.size == 0:
            return Trajectory([], traj_id=traj_id, label=label)
        times = np.arange(arr.shape[0], dtype=np.float64) * dt
        data = np.column_stack([arr, times])
        return Trajectory(data, traj_id=traj_id, label=label)

    def resampled_at_times(self, times: Sequence[float]) -> "Trajectory":
        """New trajectory with positions linearly interpolated at ``times``."""
        pts = []
        for t in times:
            p = self.point_at_time(float(t))
            pts.append((p.x, p.y, float(t)))
        return Trajectory(pts, traj_id=self.traj_id, label=self.label, validate=False)

    def distance_travelled_at(self, index: int) -> float:
        """Cumulative spatial length of the prefix ending at point ``index``."""
        if index <= 0:
            return 0.0
        lengths = self.segment_lengths()
        return float(lengths[:index].sum())
