"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access, so
PEP 660 editable installs (which must build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
classic ``setup.py develop`` code path.

``pip install .[native]`` pulls in numba and enables the compiled kernel
tier (``set_backend("native")``; DESIGN.md, "Native kernel tier").  The
base install is numpy-only: without the extra, the native backend reports
itself unavailable through a typed error and everything else works
unchanged.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=["numpy"],
    extras_require={
        "native": ["numba>=0.57"],
    },
)
